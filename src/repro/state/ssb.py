"""The Slash State Backend facade (paper Sec. 7).

One :class:`SlashStateBackend` instance lives on each executor.  Engines
obtain an :class:`OperatorStateHandle` per stateful operator and use it
for the hot path:

* ``update`` / ``absorb`` — per-record RMW or per-batch partial merge
  into the fragment (or primary store) of the owning partition;
* ``collect_deltas`` — at an epoch boundary, freeze and extract the delta
  of every remote partition's fragment (the executor ships these over
  RDMA channels; the SSB itself is transport-agnostic);
* ``merge_delta`` — leader side: validate epoch order and fold a shipped
  delta into the primary store, advancing the vector clock with the
  piggybacked watermark;
* ``extract_window`` / ``led_items`` — window triggering reads over the
  partitions this executor leads.

Consistency contract (property P2): for every key, the merge of the
leader's primary payload with all shipped partials equals the sequential
fold of all updates — guaranteed by the CRDT laws plus the epoch ledger's
no-skip/no-replay validation.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, Optional

import numpy as np

from repro.common.errors import StateError
from repro.state.crdt import Crdt
from repro.state.epoch import EpochDelta, EpochLedger
from repro.state.lss import LogStructuredStore
from repro.state.partition import PartitionDirectory
from repro.state.vector_clock import VectorClock, WatermarkTracker

# Serialized overhead of a delta message even when it carries no pairs
# (header, epoch number, piggybacked watermark).
DELTA_HEADER_BYTES = 32


class OperatorStateHandle:
    """Per-operator state access on one executor."""

    def __init__(
        self,
        backend: "SlashStateBackend",
        operator_id: str,
        crdt: Crdt,
    ):
        self.backend = backend
        self.operator_id = operator_id
        self.crdt = crdt
        directory = backend.directory
        self._stores = [
            LogStructuredStore(crdt, name=f"{operator_id}.p{p}@e{backend.executor_id}")
            for p in range(directory.executors)
        ]
        self._epochs_shipped = [0] * directory.executors
        # Group-key -> partition memo: the key->partition mapping is fixed
        # for the handle's lifetime (failover reassigns *leaders*, never
        # the hash mapping), and stream keys repeat heavily, so per-record
        # updates hit a dict instead of re-running the SplitMix64 hash.
        self._partition_cache: dict[Hashable, int] = {}

    # -- hot path ----------------------------------------------------------
    def store_for(self, partition: int) -> LogStructuredStore:
        """The local store (fragment or primary) holding ``partition``."""
        return self._stores[partition]

    def partition_of(self, key: Hashable) -> int:
        """Route a *state key* to its partition via its group component.

        State keys are either bare group keys or ``(window_id, group_key)``
        tuples; only the group component is hashed so that all windows of
        one group share a leader.  Routing is memoized per group key.
        """
        group_key = key[1] if isinstance(key, tuple) else key
        cache = self._partition_cache
        partition = cache.get(group_key)
        if partition is None:
            partition = self.backend.directory.partitioner(group_key)
            cache[group_key] = partition
        return partition

    def update(self, key: Hashable, value: Any) -> None:
        """RMW one stream value into ``key``'s payload."""
        self._stores[self.partition_of(key)].update(key, value)

    def absorb(self, key: Hashable, partial: Any) -> None:
        """Merge a pre-aggregated partial payload into ``key``."""
        self._stores[self.partition_of(key)].absorb(key, partial)

    def absorb_batch(self, partials: dict[Hashable, Any]) -> None:
        """Absorb one batch's partials, routed per partition in bulk.

        Equivalent to ``absorb`` per pair in iteration order (stores are
        touched partition by partition, but within each partition the
        relative key order is preserved and CRDT merges commute across
        partitions).  Integer group keys are routed with the vectorised
        hash; anything else falls back to the scalar path.
        """
        if not partials:
            return
        stores = self._stores
        if len(stores) == 1:
            # Single-executor deployment: everything is led locally, so
            # routing (and hashing) is pure overhead.
            stores[0].absorb_many(list(partials.items()))
            return
        items = list(partials.items())
        group_keys = [
            key[1] if isinstance(key, tuple) else key for key, _ in items
        ]
        try:
            column = np.fromiter(group_keys, dtype=np.int64, count=len(group_keys))
        except (TypeError, ValueError, OverflowError):
            # Non-integer group keys (strings, nested tuples): scalar route.
            partition_of = self.partition_of
            for key, partial in items:
                stores[partition_of(key)].absorb(key, partial)
            return
        partition_ids = self.backend.directory.partitioner.partition_array(column)
        first = int(partition_ids[0])
        if (partition_ids == first).all():
            # One partition for the whole batch (skewed or few-key loads).
            stores[first].absorb_many(items)
            return
        # Segment the batch by partition with one stable argsort instead
        # of a per-pair dict route: within each partition the original key
        # order is preserved, and partitions touch disjoint stores, so the
        # result is identical to the scalar walk.
        order = np.argsort(partition_ids, kind="stable")
        sorted_parts = partition_ids[order]
        change = np.empty(len(order), dtype=bool)
        change[0] = True
        change[1:] = sorted_parts[1:] != sorted_parts[:-1]
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], len(order))
        order_list = order.tolist()
        for partition, start, end in zip(
            sorted_parts[starts].tolist(), starts.tolist(), ends.tolist()
        ):
            stores[partition].absorb_many([items[i] for i in order_list[start:end]])

    def get_local(self, key: Hashable) -> Optional[Any]:
        """Read ``key``'s payload from this executor's local store only."""
        return self._stores[self.partition_of(key)].get(key)

    # -- epoch synchronisation ------------------------------------------------
    def collect_deltas(self) -> list[EpochDelta]:
        """Freeze and extract this epoch's delta for every remote partition.

        Steps 1-2 of the synchronisation phase (Fig. 5b): the fragments of
        all partitions this executor does *not* lead are marked read-only,
        drained, and reset.  An (empty) delta is produced even for clean
        fragments so the leader still learns the helper's watermark and
        the epoch sequence stays dense.
        """
        backend = self.backend
        deltas = []
        for partition in range(backend.directory.executors):
            if backend.directory.is_leader(backend.executor_id, partition):
                continue
            store = self._stores[partition]
            # ship_delta atomically freezes and drains the mutable region
            # (the simulation analogue of mark-read-only + DMA + invalidate).
            pairs, nbytes = store.ship_delta()
            epoch = self._epochs_shipped[partition]
            self._epochs_shipped[partition] += 1
            deltas.append(
                EpochDelta(
                    operator_id=self.operator_id,
                    partition=partition,
                    from_executor=backend.executor_id,
                    epoch=epoch,
                    pairs=tuple(pairs),
                    nbytes=nbytes + DELTA_HEADER_BYTES,
                    watermark=backend.watermarks.watermark,
                )
            )
        return deltas

    def merge_delta(self, delta: EpochDelta) -> bool:
        """Leader side: validate and fold a shipped delta (step 4).

        Returns whether the delta was *fresh*.  A re-delivered delta
        (retransmission, recovery replay) is deduplicated by the epoch
        ledger and dropped without touching the store or the clock, so
        merges stay exactly-once.
        """
        backend = self.backend
        if delta.operator_id != self.operator_id:
            raise StateError(
                f"delta for operator {delta.operator_id!r} offered to "
                f"{self.operator_id!r}"
            )
        if not backend.directory.is_leader(backend.executor_id, delta.partition):
            raise StateError(
                f"executor {backend.executor_id} is not the leader of "
                f"partition {delta.partition}"
            )
        fresh = backend.ledger.admit(delta)
        # The exactly-once audit sits *outside* admit(), re-deriving the
        # correct ruling from its own shadow account — so a bug inside the
        # ledger's dedupe logic is caught rather than trusted.
        san = backend.sanitizer
        if san is not None:
            san.note_ledger_admit(id(backend.ledger), delta, fresh)
        if not fresh:
            return False
        self._stores[delta.partition].absorb_many(delta.pairs)
        backend.clock.advance(delta.from_executor, delta.watermark)
        return True

    # -- trigger-time reads ----------------------------------------------------------
    def extract_window(self, window_id: Hashable) -> dict[Hashable, Any]:
        """Pop all pairs of ``window_id`` from the partitions led here.

        Returns ``{group_key: payload}``; the payloads are removed from
        the store (the window is finished).  Only state keys of the form
        ``(window_id, group_key)`` participate.
        """
        results: dict[Hashable, Any] = {}
        for partition in self.backend.directory.partitions_led_by(self.backend.executor_id):
            store = self._stores[partition]
            matching = store.keys_matching(
                lambda key: isinstance(key, tuple) and key[0] == window_id
            )
            for key in matching:
                results[key[1]] = store.remove(key)
        return results

    def led_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate the live pairs of every partition this executor leads."""
        for partition in self.backend.directory.partitions_led_by(self.backend.executor_id):
            yield from self._stores[partition].scan()

    def replace_led(self, key: Hashable, payload: Any) -> None:
        """Overwrite a payload in a led partition (session-window rewrite)."""
        partition = self.partition_of(key)
        if not self.backend.directory.is_leader(self.backend.executor_id, partition):
            raise StateError(f"key {key!r} is not led by this executor")
        self._stores[partition].replace(key, payload)

    def remove_led(self, key: Hashable) -> Any:
        """Remove a payload from a led partition."""
        partition = self.partition_of(key)
        if not self.backend.directory.is_leader(self.backend.executor_id, partition):
            raise StateError(f"key {key!r} is not led by this executor")
        return self._stores[partition].remove(key)

    # -- sizing ------------------------------------------------------------------------------
    def fragment_bytes(self) -> int:
        """Resident bytes across every local store of this operator."""
        return sum(store.size_bytes for store in self._stores)

    def working_set_bytes(self) -> int:
        """The hot set a per-record RMW touches, for the cache model."""
        return self.fragment_bytes()


class SlashStateBackend:
    """All operator state of one executor, plus progress tracking."""

    def __init__(self, executor_id: int, directory: PartitionDirectory, sanitizer: Any = None):
        if not 0 <= executor_id < directory.executors:
            raise StateError(
                f"executor id {executor_id} out of range for "
                f"{directory.executors} executors"
            )
        self.executor_id = executor_id
        self.directory = directory
        self.sanitizer = sanitizer
        self.watermarks = WatermarkTracker(executor_id, sanitizer=sanitizer)
        self.clock = VectorClock(
            range(directory.executors), sanitizer=sanitizer, name=f"clock@e{executor_id}"
        )
        self.ledger = EpochLedger(sanitizer=sanitizer, name=f"ledger@e{executor_id}")
        self._handles: dict[str, OperatorStateHandle] = {}

    def handle(self, operator_id: str, crdt: Crdt) -> OperatorStateHandle:
        """Get or create the state handle for ``operator_id``."""
        existing = self._handles.get(operator_id)
        if existing is not None:
            if existing.crdt is not crdt and type(existing.crdt) is not type(crdt):
                raise StateError(
                    f"operator {operator_id!r} re-registered with a different CRDT"
                )
            return existing
        handle = OperatorStateHandle(self, operator_id, crdt)
        self._handles[operator_id] = handle
        return handle

    def handles(self) -> list[OperatorStateHandle]:
        """All registered handles."""
        return list(self._handles.values())

    def observe_watermark(self, timestamp: float) -> None:
        """Advance both the local watermark and this executor's clock entry."""
        self.watermarks.observe(timestamp)
        self.clock.advance(self.executor_id, self.watermarks.watermark)

    def total_state_bytes(self) -> int:
        """Resident state bytes across all operators on this executor."""
        return sum(handle.fragment_bytes() for handle in self._handles.values())

    # -- epoch-aligned snapshots -------------------------------------------
    def snapshot(self) -> dict:
        """A consistent, self-contained snapshot of this executor's state.

        Epochs are the classic synchronisation point for checkpointing
        (the paper cites Chandy-Lamport-style epoch algorithms in
        Sec. 7.2.2); taken right after ``collect_deltas`` — when every
        fragment has just been drained — a leader-side snapshot of the
        primary partitions is a consistent checkpoint of the operator.

        The snapshot contains plain Python data (deep-copied payloads),
        so later mutation of the live stores cannot leak into it.
        """
        import copy

        return {
            "executor_id": self.executor_id,
            "watermark": self.watermarks.watermark,
            "clock": self.clock.snapshot(),
            "operators": {
                operator_id: {
                    partition: copy.deepcopy(
                        list(handle.store_for(partition).scan())
                    )
                    for partition in range(self.directory.executors)
                }
                for operator_id, handle in self._handles.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Rebuild state from :meth:`snapshot` (registered handles only).

        Every operator in the snapshot must already be registered (the
        CRDT strategy is code, not data, and is not serialized).  The
        restored payloads *replace* current store contents.
        """
        import copy

        if snapshot["executor_id"] != self.executor_id:
            raise StateError(
                f"snapshot of executor {snapshot['executor_id']} offered to "
                f"executor {self.executor_id}"
            )
        for operator_id, partitions in snapshot["operators"].items():
            handle = self._handles.get(operator_id)
            if handle is None:
                raise StateError(
                    f"snapshot contains unregistered operator {operator_id!r}"
                )
            for partition, pairs in partitions.items():
                store = handle.store_for(partition)
                for key in list(store.index.keys()):
                    store.remove(key)
                for key, payload in pairs:
                    store.absorb(key, copy.deepcopy(payload))
        for executor_id, watermark in snapshot["clock"].items():
            self.clock.advance(executor_id, watermark)
        self.watermarks.observe(snapshot["watermark"])
