"""A FASTER-style hash index: key to log-address mapping (paper Sec. 7.2.1).

The paper decouples indexing from storage: one hash index per partition
points into one or more log-structured stores.  We keep the index honest
to that contract — it maps keys to *log addresses* (integer positions),
never to values — and track the statistics the cost model needs (size,
lookups) so engines can price index probes against the cache model.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from repro.common.errors import StateError

# Bytes one index bucket entry occupies (FASTER: 8-byte atomic word per
# entry plus tag bits; we include bucket overhead).
INDEX_ENTRY_BYTES = 16


class HashIndex:
    """Maps keys to log addresses; addresses are opaque non-negative ints."""

    def __init__(self, name: str = ""):
        self.name = name
        self._slots: dict[Hashable, int] = {}
        self.lookups = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._slots

    def get(self, key: Hashable) -> Optional[int]:
        """Return the log address of ``key`` or None if absent."""
        self.lookups += 1
        return self._slots.get(key)

    def put(self, key: Hashable, address: int) -> None:
        """Point ``key`` at ``address`` (insert or move)."""
        if address < 0:
            raise StateError(f"index {self.name!r}: negative address {address}")
        if key not in self._slots:
            self.inserts += 1
        self._slots[key] = address

    def remove(self, key: Hashable) -> None:
        """Drop ``key``; raising if it was never present."""
        try:
            del self._slots[key]
        except KeyError:
            raise StateError(f"index {self.name!r}: remove of absent key {key!r}") from None

    def keys(self) -> Iterator[Hashable]:
        """Iterate over the indexed keys (no defined order)."""
        return iter(self._slots)

    def clear(self) -> None:
        """Empty the index (fragment reset after an epoch ship)."""
        self._slots.clear()

    @property
    def size_bytes(self) -> int:
        """Approximate resident size, for working-set cost estimates."""
        return len(self._slots) * INDEX_ENTRY_BYTES
