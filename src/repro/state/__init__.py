"""The Slash State Backend (SSB) and its building blocks (paper Sec. 7).

* :mod:`repro.state.crdt` — conflict-free replicated data types used to
  merge concurrently-updated window state (Sec. 5.1): commutative
  aggregates for non-holistic windows, append logs for holistic ones;
* :mod:`repro.state.vector_clock` — per-executor watermarks combined into
  the vector clock that gates event-time window triggering;
* :mod:`repro.state.hash_index` / :mod:`repro.state.lss` — a FASTER-style
  hash index over a log-structured store with a hybrid (mutable tail /
  read-only head) log, which is what makes epoch deltas cheap to find;
* :mod:`repro.state.partition` — the key-space partitioning that assigns
  one *leader* executor per partition, every other executor acting as a
  *helper* holding a fragment;
* :mod:`repro.state.epoch` — the epoch-based coherence protocol: helpers
  ship fragment deltas to leaders at epoch boundaries;
* :mod:`repro.state.ssb` — the backend facade the executor talks to.
"""

from repro.state.crdt import (
    Crdt,
    SumCrdt,
    CountCrdt,
    MinCrdt,
    MaxCrdt,
    AvgCrdt,
    AppendLogCrdt,
    crdt_by_name,
)
from repro.state.vector_clock import VectorClock, WatermarkTracker
from repro.state.hash_index import HashIndex
from repro.state.lss import LogStructuredStore, LogEntry
from repro.state.partition import KeyPartitioner, PartitionDirectory
from repro.state.epoch import EpochManager, EpochDelta
from repro.state.ssb import SlashStateBackend, OperatorStateHandle

__all__ = [
    "Crdt",
    "SumCrdt",
    "CountCrdt",
    "MinCrdt",
    "MaxCrdt",
    "AvgCrdt",
    "AppendLogCrdt",
    "crdt_by_name",
    "VectorClock",
    "WatermarkTracker",
    "HashIndex",
    "LogStructuredStore",
    "LogEntry",
    "KeyPartitioner",
    "PartitionDirectory",
    "EpochManager",
    "EpochDelta",
    "SlashStateBackend",
    "OperatorStateHandle",
]
