"""Log-structured storage with a hybrid log (paper Sec. 7.2.1).

The store follows FASTER's in-memory hybrid log, extended the way the
paper extends it for distributed execution:

* the log is an append-only sequence of entries with a **read-only
  boundary**: entries at or beyond the boundary (the *mutable tail*) are
  updated in place; an RMW that hits an entry below the boundary copies
  the merged value to the tail and invalidates the old entry;
* the region between the boundary and the tail is, by construction,
  exactly the set of key-value pairs modified since the boundary was last
  advanced — so a helper finds its **epoch delta** without any pointer
  chasing (the temporal-locality argument of the paper's rationale);
* :meth:`LogStructuredStore.ship_delta` returns that region and then
  invalidates it and advances the boundary: after a ship, RMWs restart
  from the CRDT's zero, which the paper notes is safe because leaders
  merge the shipped partials;
* the log **adaptively resizes**: when invalid entries dominate, the live
  tail is compacted, modelling the paper's adaptive circular buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Optional

from repro.common.errors import StateError
from repro.state.crdt import Crdt
from repro.state.hash_index import HashIndex

# Fixed per-entry overhead (header + key) in serialized form.
ENTRY_HEADER_BYTES = 8
KEY_BYTES = 8


@dataclass
class LogEntry:
    """One record in the log."""

    key: Hashable
    payload: Any
    valid: bool = True


class LogStructuredStore:
    """A hash-indexed hybrid log holding one partition('s fragment)."""

    def __init__(self, crdt: Crdt, name: str = "", compact_threshold: float = 0.5):
        if not 0.0 < compact_threshold <= 1.0:
            raise StateError(f"compact_threshold must be in (0, 1], got {compact_threshold}")
        self.crdt = crdt
        self.name = name
        self.compact_threshold = compact_threshold
        self.index = HashIndex(name=f"{name}.idx")
        self._log: list[LogEntry] = []
        self._readonly_boundary = 0
        self._invalid = 0
        self.compactions = 0

    # -- sizes ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    @property
    def log_length(self) -> int:
        """Total log positions, live or invalidated (pre-compaction)."""
        return len(self._log)

    @property
    def readonly_boundary(self) -> int:
        """First mutable log position (the hybrid-log split point)."""
        return self._readonly_boundary

    @property
    def size_bytes(self) -> int:
        """Approximate resident bytes of live entries plus the index."""
        live = sum(
            ENTRY_HEADER_BYTES + KEY_BYTES + self.crdt.value_bytes(entry.payload)
            for entry in self._log
            if entry.valid
        )
        return live + self.index.size_bytes

    # -- point operations -------------------------------------------------------
    def update(self, key: Hashable, value: Any) -> None:
        """RMW: fold one stream value into the payload stored under ``key``."""
        self._rmw(key, value, self.crdt.update)

    def absorb(self, key: Hashable, partial: Any) -> None:
        """Merge a pre-aggregated partial payload into ``key``.

        Used both for vectorised batch updates (the batch's per-key
        partial) and for leader-side merging of shipped fragment deltas.
        """
        self._rmw(key, partial, self.crdt.merge)

    def absorb_many(self, pairs: Iterable[tuple[Hashable, Any]]) -> None:
        """Merge a batch of ``(key, partial)`` pairs in one tight pass.

        Equivalent to calling :meth:`absorb` per pair in order, but with
        the index, log, and CRDT bound once per batch instead of once per
        key — the group-by-once-per-batch half of the state fast path.
        """
        index = self.index
        slots = index._slots
        log = self._log
        merge = self.crdt.merge
        zero = self.crdt.zero
        boundary = self._readonly_boundary
        lookups = inserts = 0
        for key, value in pairs:
            lookups += 1
            address = slots.get(key)
            if address is None:
                inserts += 1
                slots[key] = len(log)
                log.append(LogEntry(key, merge(zero(), value)))
                continue
            entry = log[address]
            if address >= boundary:
                entry.payload = merge(entry.payload, value)
                continue
            # Read-only region: copy-on-write to the mutable tail.
            merged = merge(entry.payload, value)
            entry.valid = False
            self._invalid += 1
            slots[key] = len(log)
            log.append(LogEntry(key, merged))
        index.lookups += lookups
        index.inserts += inserts

    def _rmw(self, key: Hashable, value: Any, combine: Callable[[Any, Any], Any]) -> None:
        address = self.index.get(key)
        if address is None:
            payload = combine(self.crdt.zero(), value)
            self._append(key, payload)
            return
        entry = self._log[address]
        if address >= self._readonly_boundary:
            entry.payload = combine(entry.payload, value)
            return
        # Read-only region: copy-on-write to the mutable tail.
        merged = combine(entry.payload, value)
        entry.valid = False
        self._invalid += 1
        self._append(key, merged)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the live payload under ``key`` (None if absent)."""
        address = self.index.get(key)
        if address is None:
            return None
        return self._log[address].payload

    def remove(self, key: Hashable) -> Any:
        """Invalidate ``key`` and return its payload (window eviction)."""
        address = self.index.get(key)
        if address is None:
            raise StateError(f"store {self.name!r}: remove of absent key {key!r}")
        entry = self._log[address]
        entry.valid = False
        self._invalid += 1
        self.index.remove(key)
        self._maybe_compact()
        return entry.payload

    def replace(self, key: Hashable, payload: Any) -> None:
        """Overwrite the payload under ``key`` (session-window rewrites)."""
        address = self.index.get(key)
        if address is None:
            self._append(key, payload)
            return
        if address >= self._readonly_boundary:
            self._log[address].payload = payload
        else:
            self._log[address].valid = False
            self._invalid += 1
            self._append(key, payload)

    # -- scans --------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate live ``(key, payload)`` pairs in log order.

        Log order is what a range scan over the LSS would produce; the
        paper's state backend must support such scans for window
        post-processing (Sec. 7.1.1).
        """
        for entry in self._log:
            if entry.valid:
                yield entry.key, entry.payload

    def keys_matching(self, predicate: Callable[[Hashable], bool]) -> list[Hashable]:
        """Live keys satisfying ``predicate`` (e.g. 'belongs to window w')."""
        return [entry.key for entry in self._log if entry.valid and predicate(entry.key)]

    # -- epoch delta ------------------------------------------------------------------
    def delta_pairs(self) -> list[tuple[Hashable, Any]]:
        """Live pairs modified since the read-only boundary (no side effects)."""
        return [
            (entry.key, entry.payload)
            for entry in self._log[self._readonly_boundary:]
            if entry.valid
        ]

    def delta_bytes(self) -> int:
        """Serialized size of the current delta (prices the RDMA transfer)."""
        return sum(
            ENTRY_HEADER_BYTES + KEY_BYTES + self.crdt.value_bytes(entry.payload)
            for entry in self._log[self._readonly_boundary:]
            if entry.valid
        )

    def mark_readonly(self) -> int:
        """Advance the boundary to the tail (step 2 of the epoch protocol).

        Freezes the current delta against concurrent CPU writes: further
        RMWs copy-on-write to the tail.  Returns the frozen boundary.
        """
        frozen = self._readonly_boundary
        self._readonly_boundary = len(self._log)
        return frozen

    def ship_delta(self) -> tuple[list[tuple[Hashable, Any]], int]:
        """Extract and invalidate the epoch delta (steps 2-4 for helpers).

        Returns ``(pairs, nbytes)``.  After shipping, the shipped keys are
        dropped entirely — the next RMW restarts from the CRDT zero, which
        is safe because the leader has merged the shipped partials
        (paper, Sec. 7.2.2 'Properties').
        """
        boundary = self._readonly_boundary
        log = self._log
        slots = self.index._slots
        value_bytes = self.crdt.value_bytes
        per_entry = ENTRY_HEADER_BYTES + KEY_BYTES
        pairs: list[tuple[Hashable, Any]] = []
        nbytes = 0
        truncated_invalid = 0
        # One fused pass over the tail: extract the delta, price it, and
        # drop the shipped index entries.  Every valid tail entry is the
        # latest version of its key, so its index slot points back at it.
        for entry in log[boundary:]:
            if entry.valid:
                pairs.append((entry.key, entry.payload))
                nbytes += per_entry + value_bytes(entry.payload)
                del slots[entry.key]
            else:
                truncated_invalid += 1
        # The whole tail is dead after a ship; truncating it (instead of
        # invalidating in place) keeps the log from accreting garbage and
        # triggering a full compaction every few epochs.
        del log[boundary:]
        self._invalid -= truncated_invalid
        self._maybe_compact()
        return pairs, nbytes

    # -- maintenance -----------------------------------------------------------------------
    def _append(self, key: Hashable, payload: Any) -> None:
        self.index.put(key, len(self._log))
        self._log.append(LogEntry(key, payload))

    def _maybe_compact(self) -> None:
        if not self._log:
            return
        if self._invalid / len(self._log) < self.compact_threshold:
            return
        live = [entry for entry in self._log if entry.valid]
        boundary_live = sum(
            1 for entry in self._log[: self._readonly_boundary] if entry.valid
        )
        self._log = live
        self._invalid = 0
        self._readonly_boundary = boundary_live
        self.index.clear()
        for address, entry in enumerate(self._log):
            self.index.put(entry.key, address)
        self.compactions += 1
