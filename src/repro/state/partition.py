"""Key-space partitioning: leaders and helpers (paper Sec. 7.1.2).

The SSB divides the key-value space into ``n`` disjoint partitions for an
``n``-executor deployment.  Each executor *leads* exactly one partition
(its *primary* partition) and, because Slash never re-partitions input
data, every executor also accumulates a local *fragment* of every remote
partition, acting as that partition's *helper*.

The partitioner hashes only the **group key** (never the window id), so
every window instance of one group converges at the same leader.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.common.errors import StateError

# SplitMix64 constants, used as a cheap, well-mixed integer hash so that
# partition assignment is deterministic across runs (Python's hash() is
# randomized for strings).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def stable_hash(key: Hashable) -> int:
    """A deterministic 64-bit hash for ints/str/tuples of them."""
    if isinstance(key, bool):
        value = int(key)
    elif isinstance(key, int):
        value = key & _MASK64
    elif isinstance(key, str):
        value = 0
        for char in key:
            value = (value * 131 + ord(char)) & _MASK64
    elif isinstance(key, tuple):
        value = len(key)
        for part in key:
            value = (value * 1099511628211 + stable_hash(part)) & _MASK64
    else:
        raise StateError(f"unhashable-for-partitioning key type: {type(key).__name__}")
    # SplitMix64 finalizer.
    value = (value + _SPLITMIX_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def stable_hash_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`stable_hash` over an int64 key column.

    Bit-identical to the scalar path for integer keys, so a vectorised
    partitioner and a scalar leader lookup always agree on ownership.
    """
    value = keys.astype(np.uint64)
    with np.errstate(over="ignore"):
        value = value + np.uint64(_SPLITMIX_GAMMA)
        value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return value ^ (value >> np.uint64(31))


class KeyPartitioner:
    """Maps group keys to partition ids in ``[0, partitions)``."""

    def __init__(self, partitions: int):
        if partitions <= 0:
            raise StateError(f"partitions must be positive, got {partitions}")
        self.partitions = partitions

    def partition_of(self, group_key: Hashable) -> int:
        """The partition owning ``group_key``."""
        return stable_hash(group_key) % self.partitions

    def partition_array(self, group_keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`partition_of` over an int64 key column.

        Bit-identical to the scalar path (``stable_hash_array`` matches
        ``stable_hash`` for integers, and the modulus of a non-negative
        64-bit hash is representation-independent), so batched routing and
        scalar leader lookups always agree on ownership.
        """
        return (
            stable_hash_array(group_keys) % np.uint64(self.partitions)
        ).astype(np.int64)

    def __call__(self, group_key: Hashable) -> int:
        return self.partition_of(group_key)


class PartitionDirectory:
    """Who leads which partition; identity mapping by default.

    The paper's setup phase creates one primary partition per executor,
    so partition ``i`` is led by executor ``i``.  ``leaders`` overrides
    that: mapping several (or all) partitions onto a subset of executors
    yields the decoupled storage/compute layout the paper's challenge C1
    describes — pure compute executors become helpers for everything and
    ship all their state to the designated leader nodes.
    """

    def __init__(self, executors: int, leaders: Optional[list[int]] = None):
        if executors <= 0:
            raise StateError(f"executors must be positive, got {executors}")
        self.executors = executors
        self.partitioner = KeyPartitioner(executors)
        if leaders is None:
            self._leader_of = list(range(executors))
        else:
            if len(leaders) != executors:
                raise StateError(
                    f"leaders must map all {executors} partitions, got "
                    f"{len(leaders)}"
                )
            bad = [e for e in leaders if not 0 <= e < executors]
            if bad:
                raise StateError(f"leader ids out of range: {bad}")
            self._leader_of = list(leaders)

    def leader_of_partition(self, partition: int) -> int:
        """The executor leading ``partition``."""
        if not 0 <= partition < self.executors:
            raise StateError(f"partition {partition} out of range")
        return self._leader_of[partition]

    def leader_of_key(self, group_key: Hashable) -> int:
        """The executor leading the partition that owns ``group_key``."""
        return self._leader_of[self.partitioner(group_key)]

    def partitions_led_by(self, executor_id: int) -> list[int]:
        """All partitions ``executor_id`` leads (exactly one by default)."""
        return [p for p, e in enumerate(self._leader_of) if e == executor_id]

    def is_leader(self, executor_id: int, partition: int) -> bool:
        """Whether ``executor_id`` leads ``partition``."""
        return self.leader_of_partition(partition) == executor_id

    def reassign(self, partition: int, new_leader: int) -> int:
        """Move leadership of ``partition`` to ``new_leader`` (failover).

        The directory object is shared by every executor of a deployment,
        so a reassignment is immediately visible to all shippers' leader
        lookups — helpers start routing the partition's deltas to the
        promoted executor on their next epoch boundary.  Returns the
        previous leader.
        """
        if not 0 <= partition < self.executors:
            raise StateError(f"partition {partition} out of range")
        if not 0 <= new_leader < self.executors:
            raise StateError(f"new leader {new_leader} out of range")
        previous = self._leader_of[partition]
        self._leader_of[partition] = new_leader
        return previous
