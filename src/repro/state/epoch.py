"""The epoch-based coherence protocol's bookkeeping (paper Sec. 7.2.2).

An *epoch* is the span between two synchronisation points.  The paper
ends an epoch every 64 MB of ingested data, and additionally a window
trigger may end an epoch ahead of time.  At an epoch boundary every
helper ships the delta of each shared partition to that partition's
leader; the leader checks that epochs from one helper arrive densely (no
skips — 'state updates cannot skip each other') before merging.

:class:`EpochManager` is the helper-side trigger; :class:`EpochLedger`
is the leader-side order validator; :class:`EpochDelta` is the message
that travels (with the helper's watermark piggybacked, Sec. 7.2.2
'Properties').
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.common.config import DEFAULT_EPOCH_BYTES
from repro.common.errors import StateError


@dataclass(frozen=True)
class EpochDelta:
    """One helper-to-leader state transfer for one partition."""

    operator_id: str
    partition: int
    from_executor: int
    epoch: int
    pairs: tuple[tuple[Hashable, Any], ...]
    nbytes: int
    watermark: float

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise StateError(f"negative epoch {self.epoch}")
        if self.nbytes < 0:
            raise StateError(f"negative delta size {self.nbytes}")


class EpochManager:
    """Decides when an executor's epoch ends (byte threshold or forced)."""

    def __init__(self, epoch_bytes: int = DEFAULT_EPOCH_BYTES):
        if epoch_bytes <= 0:
            raise StateError(f"epoch_bytes must be positive, got {epoch_bytes}")
        self.epoch_bytes = epoch_bytes
        self._epoch = 0
        self._ingested_since_boundary = 0

    @property
    def current_epoch(self) -> int:
        """The epoch now being accumulated."""
        return self._epoch

    @property
    def bytes_into_epoch(self) -> int:
        """Data ingested since the last boundary."""
        return self._ingested_since_boundary

    def offer(self, nbytes: int) -> bool:
        """Account ``nbytes`` of ingested data; True if the epoch ended.

        When True, the caller must run the synchronisation phase and the
        accumulator restarts for the next epoch.
        """
        if nbytes < 0:
            raise StateError(f"negative ingest size {nbytes}")
        self._ingested_since_boundary += nbytes
        if self._ingested_since_boundary >= self.epoch_bytes:
            self._advance()
            return True
        return False

    def force(self) -> int:
        """End the epoch ahead of time (window-trigger signal, Sec. 7.2.2).

        Returns the epoch that just closed.
        """
        closed = self._epoch
        self._advance()
        return closed

    def _advance(self) -> None:
        self._epoch += 1
        self._ingested_since_boundary = 0


class EpochLedger:
    """Leader-side validation that helper deltas arrive in dense order.

    The ledger is also the system's exactly-once filter: a re-delivered
    delta (retransmission after a fault, or a replay during recovery) is
    *deduplicated*, not treated as corruption, so CRDT merges stay
    exactly-once no matter how many times a delta crosses the wire.
    """

    def __init__(self, sanitizer: Any = None, name: str = ""):
        self._last_seen: dict[tuple[str, int, int], int] = {}
        #: Optional repro.sanitizer Sanitizer: seed() reports admission
        #: floors so the shadow exactly-once account survives restores.
        self.sanitizer = sanitizer
        self.name = name

    def admit(self, delta: EpochDelta) -> bool:
        """Validate ordering for ``delta``; returns whether it is *fresh*.

        ``True`` means the caller must merge the delta (it advances the
        dense per-helper sequence).  ``False`` means the exact delta was
        already admitted — a duplicate from retransmission or recovery
        replay — and the caller must drop it without merging.  A *skip*
        (an epoch arriving more than one ahead) still raises: updates
        cannot overtake each other on a FIFO channel, so a gap is a bug
        or data loss, never something to paper over.
        """
        key = (delta.operator_id, delta.partition, delta.from_executor)
        last = self._last_seen.get(key)
        if last is not None and delta.epoch <= last:
            return False
        if last is not None and delta.epoch != last + 1:
            raise StateError(
                f"epoch skip from executor {delta.from_executor} on "
                f"partition {delta.partition}: {delta.epoch} after {last}"
            )
        self._last_seen[key] = delta.epoch
        return True

    def last_epoch(self, operator_id: str, partition: int, helper: int) -> int:
        """Last admitted epoch for a (partition, helper) pair (-1 if none)."""
        return self._last_seen.get((operator_id, partition, helper), -1)

    def seed(self, operator_id: str, partition: int, helper: int, epoch: int) -> None:
        """Install a known admission point (checkpoint restore).

        A promoted leader seeds its ledger from the crashed leader's
        checkpoint so that replayed deltas at or below ``epoch`` dedupe
        and the dense-sequence check resumes from the right place.
        Seeding never moves an entry backwards.
        """
        key = (operator_id, partition, helper)
        if epoch > self._last_seen.get(key, -1):
            self._last_seen[key] = epoch
        if self.sanitizer is not None:
            self.sanitizer.note_ledger_seed(id(self), operator_id, partition, helper, epoch)

    def snapshot(self) -> dict[tuple[str, int, int], int]:
        """A copy of the admission frontier (checkpoint payload)."""
        return dict(self._last_seen)
