"""The epoch-based coherence protocol's bookkeeping (paper Sec. 7.2.2).

An *epoch* is the span between two synchronisation points.  The paper
ends an epoch every 64 MB of ingested data, and additionally a window
trigger may end an epoch ahead of time.  At an epoch boundary every
helper ships the delta of each shared partition to that partition's
leader; the leader checks that epochs from one helper arrive densely (no
skips — 'state updates cannot skip each other') before merging.

:class:`EpochManager` is the helper-side trigger; :class:`EpochLedger`
is the leader-side order validator; :class:`EpochDelta` is the message
that travels (with the helper's watermark piggybacked, Sec. 7.2.2
'Properties').
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.common.config import DEFAULT_EPOCH_BYTES
from repro.common.errors import StateError


@dataclass(frozen=True)
class EpochDelta:
    """One helper-to-leader state transfer for one partition."""

    operator_id: str
    partition: int
    from_executor: int
    epoch: int
    pairs: tuple[tuple[Hashable, Any], ...]
    nbytes: int
    watermark: float

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise StateError(f"negative epoch {self.epoch}")
        if self.nbytes < 0:
            raise StateError(f"negative delta size {self.nbytes}")


class EpochManager:
    """Decides when an executor's epoch ends (byte threshold or forced)."""

    def __init__(self, epoch_bytes: int = DEFAULT_EPOCH_BYTES):
        if epoch_bytes <= 0:
            raise StateError(f"epoch_bytes must be positive, got {epoch_bytes}")
        self.epoch_bytes = epoch_bytes
        self._epoch = 0
        self._ingested_since_boundary = 0

    @property
    def current_epoch(self) -> int:
        """The epoch now being accumulated."""
        return self._epoch

    @property
    def bytes_into_epoch(self) -> int:
        """Data ingested since the last boundary."""
        return self._ingested_since_boundary

    def offer(self, nbytes: int) -> bool:
        """Account ``nbytes`` of ingested data; True if the epoch ended.

        When True, the caller must run the synchronisation phase and the
        accumulator restarts for the next epoch.
        """
        if nbytes < 0:
            raise StateError(f"negative ingest size {nbytes}")
        self._ingested_since_boundary += nbytes
        if self._ingested_since_boundary >= self.epoch_bytes:
            self._advance()
            return True
        return False

    def force(self) -> int:
        """End the epoch ahead of time (window-trigger signal, Sec. 7.2.2).

        Returns the epoch that just closed.
        """
        closed = self._epoch
        self._advance()
        return closed

    def _advance(self) -> None:
        self._epoch += 1
        self._ingested_since_boundary = 0


class EpochLedger:
    """Leader-side validation that helper deltas arrive in dense order."""

    def __init__(self):
        self._last_seen: dict[tuple[str, int, int], int] = {}

    def admit(self, delta: EpochDelta) -> None:
        """Validate ordering for ``delta``; raises on skipped/replayed epochs."""
        key = (delta.operator_id, delta.partition, delta.from_executor)
        last = self._last_seen.get(key)
        if last is not None and delta.epoch <= last:
            raise StateError(
                f"epoch replay from executor {delta.from_executor} on "
                f"partition {delta.partition}: {delta.epoch} after {last}"
            )
        if last is not None and delta.epoch != last + 1:
            raise StateError(
                f"epoch skip from executor {delta.from_executor} on "
                f"partition {delta.partition}: {delta.epoch} after {last}"
            )
        self._last_seen[key] = delta.epoch

    def last_epoch(self, operator_id: str, partition: int, helper: int) -> int:
        """Last admitted epoch for a (partition, helper) pair (-1 if none)."""
        return self._last_seen.get((operator_id, partition, helper), -1)
