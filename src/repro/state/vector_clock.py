"""Vector clocks and watermark tracking (paper Sec. 5.1, progress tracking).

Slash omits re-partitioning, so no single executor sees all records of a
key; window triggering must therefore coordinate.  Every executor tracks
the greatest event-time timestamp it has pushed into state (its
*watermark*).  Executors share watermarks — piggybacked on epoch delta
transfers (Sec. 7.2.2) — building a vector clock
``V = {l_1, ..., l_m}``.  A window ``[start, end)`` may trigger at an
executor only when *every* entry of the vector clock is ``>= end``: at
that point no executor can still contribute a record with a timestamp
inside the window (property *P1*).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import StateError


class WatermarkTracker:
    """One executor's local watermark: the max event time observed."""

    def __init__(self, executor_id: int, sanitizer: Any = None):
        self.executor_id = executor_id
        self._watermark = float("-inf")
        self.sanitizer = sanitizer

    @property
    def watermark(self) -> float:
        """Greatest event-time timestamp seen so far (-inf initially)."""
        return self._watermark

    def observe(self, timestamp: float) -> None:
        """Advance the watermark with one record's event time."""
        if timestamp > self._watermark:
            self._watermark = timestamp
        if self.sanitizer is not None:
            self.sanitizer.note_watermark(id(self), self.executor_id, self._watermark)

    def observe_batch_max(self, batch_max_timestamp: float) -> None:
        """Advance with the pre-computed max of a whole batch."""
        self.observe(batch_max_timestamp)


class VectorClock:
    """The combined view of all executors' watermarks."""

    def __init__(self, executor_ids: Iterable[int], sanitizer: Any = None, name: str = ""):
        ids = list(executor_ids)
        if not ids:
            raise StateError("vector clock needs at least one executor")
        if len(set(ids)) != len(ids):
            raise StateError(f"duplicate executor ids: {ids}")
        self._entries: dict[int, float] = {e: float("-inf") for e in ids}
        self.sanitizer = sanitizer
        self.name = name

    @property
    def executor_ids(self) -> list[int]:
        """Executor ids tracked by this clock, sorted."""
        return sorted(self._entries)

    def entry(self, executor_id: int) -> float:
        """The last known watermark of ``executor_id``."""
        try:
            return self._entries[executor_id]
        except KeyError:
            raise StateError(f"unknown executor {executor_id}") from None

    def advance(self, executor_id: int, watermark: float) -> None:
        """Merge a newly-learned watermark; entries never move backwards."""
        if executor_id not in self._entries:
            raise StateError(f"unknown executor {executor_id}")
        if watermark > self._entries[executor_id]:
            self._entries[executor_id] = watermark
        if self.sanitizer is not None:
            self.sanitizer.note_clock_entry(
                id(self), self.name, executor_id, self._entries[executor_id]
            )

    def merge(self, other: "VectorClock") -> None:
        """Element-wise max with another clock over the same executors."""
        if set(other._entries) != set(self._entries):
            raise StateError("cannot merge vector clocks of different groups")
        for executor_id, watermark in other._entries.items():
            self.advance(executor_id, watermark)

    def min_watermark(self) -> float:
        """The frontier: the slowest executor's watermark."""
        return min(self._entries.values())

    def all_past(self, timestamp: float) -> bool:
        """True when every executor has progressed past ``timestamp``.

        This is the trigger condition: a window ending at ``timestamp``
        can safely fire because property P1 guarantees no executor will
        contribute an update with an event time below its own watermark.
        """
        return self.min_watermark() >= timestamp

    def snapshot(self) -> dict[int, float]:
        """An immutable copy of the entries (for piggybacking)."""
        return dict(self._entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}:{w:g}" for e, w in sorted(self._entries.items()))
        return f"VectorClock({inner})"
