"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch one base class.  Sub-classes mirror the layers of the
system: configuration, simulation kernel, network protocol, state backend,
and query compilation / execution.
"""


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigError(ReproError):
    """An invalid hardware, engine, or workload configuration."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, resuming a finished process,
    or running a simulator that has already been exhausted.
    """


class ProtocolError(ReproError):
    """A violation of the RDMA channel / credit-flow-control protocol.

    Raised when a producer writes without credit, a consumer acknowledges a
    buffer twice, or a message footer is observed in an impossible state.
    The protocol invariants of Sec. 6.2 of the paper are enforced with this
    error.
    """


class StateError(ReproError):
    """A violation of the Slash State Backend contract.

    Examples: merging CRDTs of different types, an epoch transfer that skips
    an epoch number, or reading a partition that is mid-migration.
    """


class QueryError(ReproError):
    """An invalid streaming query (bad DAG, unsupported operator combo)."""


class CapabilityError(ConfigError):
    """A scenario asked an engine for a feature it does not implement.

    Raised *before* a run starts — e.g. requesting fault injection on
    LightSaber, or a scale-out topology on a single-node engine — so a
    mis-configured sweep fails fast with the engine's capability set in
    the message instead of crashing mid-simulation.
    """


class FaultError(ReproError):
    """An injected fault exhausted the system's tolerance budget.

    Raised when a transfer exceeds its bounded retransmission budget
    (RNR-NAK retry count), when a fault plan is malformed (e.g. crashing
    a node that does not exist), or when a fault fires against a
    component that cannot absorb it.  Distinct from
    :class:`RecoveryError`: a ``FaultError`` means the *fault model*
    gave up, not that recovery was attempted and failed.
    """


class RecoveryError(ReproError):
    """Epoch-based recovery could not restore a consistent state.

    Examples: a leader and its checkpoint backup crashed in the same
    run (no surviving replica to promote), a replay window whose source
    offsets were never recorded, or a promoted helper discovering a gap
    in the retained delta logs.  When this is raised, the zero-lost-
    results invariant can no longer be guaranteed and the run aborts
    loudly rather than emitting silently-wrong window results.
    """


class ChannelResetError(ReproError):
    """An RDMA channel was torn down while an endpoint was using it.

    Raised at a producer blocked on credit (or a consumer blocked on
    arrivals) when the peer is declared dead and the channel enters the
    reset/re-establish handshake.  Callers catch it to re-route traffic
    to the promoted leader or to abandon the stream; it is *not* a bug,
    unlike :class:`~repro.common.errors.ProtocolError`.
    """
