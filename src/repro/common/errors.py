"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch one base class.  Sub-classes mirror the layers of the
system: configuration, simulation kernel, network protocol, state backend,
and query compilation / execution.
"""


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigError(ReproError):
    """An invalid hardware, engine, or workload configuration."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, resuming a finished process,
    or running a simulator that has already been exhausted.
    """


class ProtocolError(ReproError):
    """A violation of the RDMA channel / credit-flow-control protocol.

    Raised when a producer writes without credit, a consumer acknowledges a
    buffer twice, or a message footer is observed in an impossible state.
    The protocol invariants of Sec. 6.2 of the paper are enforced with this
    error.
    """


class StateError(ReproError):
    """A violation of the Slash State Backend contract.

    Examples: merging CRDTs of different types, an epoch transfer that skips
    an epoch number, or reading a partition that is mid-migration.
    """


class QueryError(ReproError):
    """An invalid streaming query (bad DAG, unsupported operator combo)."""
