"""Hardware and cluster configuration dataclasses.

The defaults model the paper's evaluation cluster (Sec. 8.1.1): 16 nodes,
each with a 10-core Intel Xeon Gold 5115 at 2.4 GHz, 96 GB of DRAM, and a
single-port Mellanox ConnectX-4 EDR 100 Gb/s NIC behind a non-blocking EDR
switch.  The *achievable* NIC bandwidth is 11.8 GB/s, the figure the authors
measured with ``ib_write_bw`` and drew as the red line in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MIB, US, gbit_per_s


@dataclass(frozen=True)
class CpuConfig:
    """A socket's core count, clock, and cache hierarchy.

    Cache sizes/latencies model the Xeon Gold 5115 (Skylake-SP): 32 KiB L1d
    and 1 MiB L2 per core, 13.75 MiB shared LLC.  Latencies are load-to-use
    cycles; ``dram_latency_cycles`` is the full miss penalty to DRAM.
    """

    cores: int = 10
    frequency_hz: float = 2.4e9
    l1d_bytes: int = 32 * KIB
    l2_bytes: int = 1 * MIB
    llc_bytes: int = int(13.75 * MIB)
    cacheline_bytes: int = 64
    l1_latency_cycles: float = 4.0
    l2_latency_cycles: float = 14.0
    llc_latency_cycles: float = 50.0
    dram_latency_cycles: float = 200.0
    # Peak sustainable DRAM bandwidth per socket (6x DDR4-2400, measured).
    dram_bandwidth_bytes_per_s: float = 68e9

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"cores must be positive, got {self.cores}")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency_hz must be positive")
        if not self.l1d_bytes <= self.l2_bytes <= self.llc_bytes:
            raise ConfigError("cache sizes must be non-decreasing L1 <= L2 <= LLC")

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this clock."""
        return cycles / self.frequency_hz

    def cycles(self, seconds: float) -> float:
        """Convert seconds to cycles at this clock."""
        return seconds * self.frequency_hz


@dataclass(frozen=True)
class NicConfig:
    """An RDMA NIC: achievable bandwidth, latencies, per-message costs.

    ``bandwidth_bytes_per_s`` is the *achievable* (not theoretical) rate;
    the ConnectX-4 EDR port is 100 Gb/s = 12.5 GB/s on the wire but tops out
    at 11.8 GB/s in ``ib_write_bw``, which is what we model.

    Per-message overheads follow the RDMA design-guidelines literature
    (Kalia et al., ATC'16): posting a work request costs the CPU a doorbell
    (MMIO) write; the NIC then spends a fixed per-WQE processing time before
    bytes hit the wire.
    """

    bandwidth_bytes_per_s: float = 11.8e9
    wire_bandwidth_bytes_per_s: float = gbit_per_s(100)
    propagation_latency_s: float = 0.6 * US
    nic_processing_s: float = 0.25 * US
    doorbell_cycles: float = 150.0
    # Cycles the CPU burns to poll a completion queue entry once.
    cq_poll_cycles: float = 40.0
    # IPoIB: socket emulation over the same port.  Effective bandwidth and
    # per-message CPU cost degrade heavily (Binnig et al., VLDB'16).
    ipoib_bandwidth_bytes_per_s: float = 4.7e9
    ipoib_syscall_cycles: float = 4500.0
    ipoib_latency_s: float = 18.0 * US

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("NIC bandwidth must be positive")
        if self.bandwidth_bytes_per_s > self.wire_bandwidth_bytes_per_s:
            raise ConfigError(
                "achievable bandwidth cannot exceed wire bandwidth: "
                f"{self.bandwidth_bytes_per_s} > {self.wire_bandwidth_bytes_per_s}"
            )

    def wire_time(self, nbytes: int) -> float:
        """Seconds the NIC needs to serialize ``nbytes`` onto the wire."""
        return nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class NodeConfig:
    """One server: a CPU socket, DRAM capacity, and one NIC."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    dram_bytes: int = 96 * GIB

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise ConfigError("dram_bytes must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """A rack of identical nodes behind one non-blocking switch."""

    nodes: int = 16
    node: NodeConfig = field(default_factory=NodeConfig)
    # A non-blocking EDR switch adds only port-to-port latency.
    switch_latency_s: float = 0.3 * US

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigError(f"nodes must be positive, got {self.nodes}")

    def with_nodes(self, nodes: int) -> "ClusterConfig":
        """Return a copy of this config scaled to ``nodes`` nodes."""
        return ClusterConfig(nodes=nodes, node=self.node, switch_latency_s=self.switch_latency_s)


def paper_cluster(nodes: int = 16) -> ClusterConfig:
    """The evaluation cluster of the paper (Sec. 8.1.1), sized to ``nodes``."""
    return ClusterConfig(nodes=nodes)


# Default number of message buffers (credits) per RDMA channel; the paper
# found c=8 best (Sec. 8.3.2) and we adopt it as the library default.
DEFAULT_CREDITS = 8

# Default RDMA channel buffer size.  The paper's drill-down identifies
# 32-64 KiB as the throughput sweet spot; end-to-end runs use 64 KiB.
DEFAULT_BUFFER_BYTES = 64 * KIB

# Default epoch length for the SSB, expressed in ingested bytes (the paper
# ends an epoch every 64 MB of data, Sec. 8.1.1).
DEFAULT_EPOCH_BYTES = 64 * MIB
