"""Did-you-mean helpers shared by the CLI, registry, and workload lookup.

One formatting convention for every "unknown name" error in the repo:
the offending name, the closest known name (if any is close enough),
and the full list of known names.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional, Sequence


def did_you_mean(name: str, candidates: Iterable[str]) -> Optional[str]:
    """Return the closest candidate to ``name``, or ``None``.

    The cutoff (0.4) is deliberately loose: a CLI typo like ``slsh``
    should still land on ``slash``.
    """
    close = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.4)
    return close[0] if close else None


def unknown_name_message(kind: str, name: str, candidates: Sequence[str]) -> str:
    """Format the canonical unknown-``kind`` message with a suggestion."""
    message = f"unknown {kind} {name!r}"
    close = did_you_mean(name, candidates)
    if close:
        message += f" — did you mean {close!r}?"
    message += " (known: " + ", ".join(candidates) + ")"
    return message
