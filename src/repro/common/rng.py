"""Deterministic random-number tree.

Every experiment in this repository must be bit-for-bit reproducible.  To
achieve that without threading a single generator through every module (and
thereby making results depend on call order), we derive *named* child
generators from a root seed: the generator for ``("ysb", "node3", "keys")``
is always the same stream regardless of what other components drew before.

Implementation: each name path is hashed (SHA-256) together with the root
seed into a 128-bit seed for an independent :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngTree:
    """A tree of independent, deterministically-derived RNG streams."""

    def __init__(self, seed: int, _path: tuple[str, ...] = ()):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._path = _path

    @property
    def seed(self) -> int:
        """The root seed this tree was built from."""
        return self._seed

    @property
    def path(self) -> tuple[str, ...]:
        """The name path of this subtree (empty for the root)."""
        return self._path

    def child(self, *names: str) -> "RngTree":
        """Return the subtree at ``names`` below this node."""
        return RngTree(self._seed, self._path + tuple(str(n) for n in names))

    def generator(self, *names: str) -> np.random.Generator:
        """Return the numpy generator for the stream at ``names``.

        Calling this twice with the same path returns generators that
        produce identical streams.
        """
        path = self._path + tuple(str(n) for n in names)
        material = repr((self._seed, path)).encode("utf-8")
        digest = hashlib.sha256(material).digest()
        seed = int.from_bytes(digest[:16], "little")
        return np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"RngTree(seed={self._seed}, path={'/'.join(self._path) or '<root>'})"
