"""Shared utilities: units, errors, deterministic RNG, configuration.

The :mod:`repro.common` package holds everything that is shared by the
simulation substrate, the engines, and the harness but belongs to none of
them: physical-unit helpers, the exception hierarchy, the deterministic RNG
tree used to make every experiment reproducible, and the hardware / engine
configuration dataclasses.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    SimulationError,
    ProtocolError,
    StateError,
    QueryError,
)
from repro.common.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    US,
    MS,
    SECOND,
    gbit_per_s,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)
from repro.common.rng import RngTree
from repro.common.config import (
    CpuConfig,
    NicConfig,
    NodeConfig,
    ClusterConfig,
    paper_cluster,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ProtocolError",
    "StateError",
    "QueryError",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "SECOND",
    "gbit_per_s",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "RngTree",
    "CpuConfig",
    "NicConfig",
    "NodeConfig",
    "ClusterConfig",
    "paper_cluster",
]
