"""Physical units and human-readable formatting.

Simulated time is measured in **seconds** (floats), sizes in **bytes**
(ints), rates in **bytes/second**.  These helpers exist so that magic
numbers like ``65536`` or ``1e-6`` never appear bare in engine code.
"""

# -- sizes --------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Decimal units: network vendors quote GB/s decimal.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# -- time ---------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9


def gbit_per_s(gbits: float) -> float:
    """Convert a link speed quoted in Gbit/s into bytes/second.

    >>> gbit_per_s(100) == 12.5e9
    True
    """
    return gbits * 1e9 / 8.0


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix (``64.0 KiB``)."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_s: float) -> str:
    """Format a data rate (``11.8 GB/s``), decimal units as NIC vendors do."""
    value = float(bytes_per_s)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000.0 or suffix == "TB/s":
            return f"{value:.2f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_rate_records(records_per_s: float) -> str:
    """Format a record rate the way the paper's figures do (``2.0 G rec/s``)."""
    value = float(records_per_s)
    for suffix in ("rec/s", "K rec/s", "M rec/s", "G rec/s"):
        if abs(value) < 1000.0 or suffix == "G rec/s":
            return f"{value:.2f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Format a duration with the natural sub-second unit (``82.0 us``)."""
    if seconds == 0:
        return "0 s"
    value = abs(seconds)
    if value >= 1.0:
        return f"{seconds:.3f} s"
    if value >= MS:
        return f"{seconds / MS:.1f} ms"
    if value >= US:
        return f"{seconds / US:.1f} us"
    return f"{seconds / NS:.1f} ns"
