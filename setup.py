"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The offline environment lacks the `wheel` package, which the PEP-517
editable path requires; this setup.py enables the classic develop install.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
