"""Properties of the production-traffic generators (seeded rngs).

The storm transforms promise exact, bounded distortion: the late storm
never exceeds its declared lateness bound (the query's out-of-orderness
allowance), the duplicate storm replaces an exact record count with
byte-identical redeliveries, and sessionization keeps every user's
events in order.  The properties hold for *every* seed, so the checks
draw from the session `rng` fixture (sweep with `REPRO_TEST_SEED`).
"""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads.traffic import (
    SessionizedWorkload,
    duplicate_storm,
    late_storm,
    session_runs,
)


def _monotone(n, rng, span=10_000):
    base = np.sort(rng.integers(0, span, size=n)).astype(np.int64)
    return base


# -- late storm --------------------------------------------------------------

@pytest.mark.parametrize("late_frac", [0.01, 0.05, 0.25])
@pytest.mark.parametrize("late_by_ms", [1, 50, 2000])
def test_late_storm_lateness_within_declared_bound(rng, late_frac, late_by_ms):
    timestamps = _monotone(5000, rng)
    shifted = late_storm(timestamps, late_frac, late_by_ms, rng)
    # Lateness is measured against the running watermark (the max of all
    # earlier *original* timestamps, which the storm never raises).
    watermark = np.maximum.accumulate(shifted)
    lateness = watermark - shifted
    assert int(lateness.max()) <= late_by_ms
    # And no record moved forward: shedding lateness only.
    assert (shifted <= timestamps).all()


@pytest.mark.parametrize("late_frac", [0.0, 0.02, 0.1])
def test_late_storm_moves_exact_fraction(rng, late_frac):
    timestamps = np.arange(4000, dtype=np.int64) * 10 + 10_000
    shifted = late_storm(timestamps, late_frac, 500, rng)
    moved = int((shifted != timestamps).sum())
    assert moved == round(late_frac * len(timestamps))


def test_late_storm_validates_inputs(rng):
    timestamps = _monotone(10, rng)
    with pytest.raises(ConfigError, match="late_frac"):
        late_storm(timestamps, 1.5, 10, rng)
    with pytest.raises(ConfigError, match="late_by_ms"):
        late_storm(timestamps, 0.1, -1, rng)


# -- duplicate storm ---------------------------------------------------------

@pytest.mark.parametrize("dup_frac", [0.0, 0.02, 0.1])
def test_duplicate_storm_fraction_exact(rng, dup_frac):
    n = 5000
    columns = {
        "ts": np.arange(n, dtype=np.int64),
        "key": rng.integers(0, 100, size=n).astype(np.int64),
    }
    out = duplicate_storm(dict(columns), dup_frac, rng)
    # ts was strictly increasing, so every redelivered record is exactly
    # a repeat of its predecessor's timestamp.
    dupes = int((np.diff(out["ts"]) == 0).sum())
    assert dupes == round(dup_frac * n)
    assert len(out["ts"]) == n  # record count unchanged


def test_duplicate_storm_copies_all_columns_together(rng):
    n = 2000
    columns = {
        "ts": np.arange(n, dtype=np.int64),
        "key": rng.integers(0, 50, size=n).astype(np.int64),
    }
    out = duplicate_storm(dict(columns), 0.05, rng)
    dup_positions = np.flatnonzero(np.diff(out["ts"]) == 0) + 1
    assert len(dup_positions) > 0
    for index in dup_positions:
        assert out["key"][index] == out["key"][index - 1]


def test_duplicate_storm_validates_fraction(rng):
    with pytest.raises(ConfigError, match="dup_frac"):
        duplicate_storm({"ts": np.arange(10)}, 1.0, rng)


# -- sessionization ----------------------------------------------------------

def test_session_runs_cover_count_and_user_range(rng):
    keys = session_runs(3000, 8.0, users=500, zipf_z=1.1, rng=rng)
    assert len(keys) == 3000
    assert keys.min() >= 0 and keys.max() < 500


def test_session_runs_rejects_sub_unit_mean(rng):
    with pytest.raises(ConfigError, match="mean_session_records"):
        session_runs(100, 0.5, users=10, zipf_z=0.0, rng=rng)


def test_sessionized_streams_per_key_ordered():
    """Without storms, each user's events are in timestamp order in every
    generated flow — sessions are contiguous runs over monotone time."""
    workload = SessionizedWorkload(
        records_per_thread=2000, batch_records=500, seed=77,
        users=200, zipf_z=1.0, mean_session_records=6.0,
    )
    for node in range(2):
        for thread in range(2):
            flow = workload._flow(node, thread)
            ts = np.concatenate([batch.col("ts") for _s, batch in flow])
            keys = np.concatenate([batch.col("key") for _s, batch in flow])
            for key in np.unique(keys):
                per_key = ts[keys == key]
                assert (np.diff(per_key) >= 0).all()


def test_sessionized_workload_deterministic_per_seed():
    first = SessionizedWorkload(
        records_per_thread=1000, batch_records=250, seed=11,
        zipf_z=0.8, late_frac=0.05, late_by_ms=500, dup_frac=0.02,
    )
    second = SessionizedWorkload(
        records_per_thread=1000, batch_records=250, seed=11,
        zipf_z=0.8, late_frac=0.05, late_by_ms=500, dup_frac=0.02,
    )
    for (_sa, batch_a), (_sb, batch_b) in zip(
        first._flow(0, 0), second._flow(0, 0)
    ):
        assert (batch_a.col("ts") == batch_b.col("ts")).all()
        assert (batch_a.col("key") == batch_b.col("key")).all()


def test_sessionized_workload_late_storm_respects_declared_disorder():
    workload = SessionizedWorkload(
        records_per_thread=3000, batch_records=500, seed=5,
        late_frac=0.1, late_by_ms=1000,
    )
    assert workload.build_query().streams[0].disorder_ms == 1000
    flow = workload._flow(0, 0)
    ts = np.concatenate([batch.col("ts") for _s, batch in flow])
    watermark = np.maximum.accumulate(ts)
    assert int((watermark - ts).max()) <= 1000
