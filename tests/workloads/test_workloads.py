"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.workloads import (
    ClusterMonitoringWorkload,
    Nexmark7Workload,
    Nexmark8Workload,
    Nexmark11Workload,
    ReadOnlyWorkload,
    YsbWorkload,
)

ALL_WORKLOADS = [
    lambda: YsbWorkload(records_per_thread=600, key_range=100),
    lambda: ClusterMonitoringWorkload(records_per_thread=600, jobs=50),
    lambda: Nexmark7Workload(records_per_thread=600, key_range=100),
    lambda: ReadOnlyWorkload(records_per_thread=600, key_range=100),
    lambda: Nexmark8Workload(records_per_thread=600, sellers=20),
    lambda: Nexmark11Workload(records_per_thread=600, sellers=20),
]


@pytest.mark.parametrize("factory", ALL_WORKLOADS, ids=lambda f: f().name)
class TestCommonProperties:
    def test_total_records_exact(self, factory):
        workload = factory()
        flows = workload.flows(2, 3)
        total = sum(len(b) for flow in flows.values() for _s, b in flow)
        assert total == workload.total_records(2, 3) == 2 * 3 * 600

    def test_deterministic(self, factory):
        a = factory().flows(1, 2)
        b = factory().flows(1, 2)
        for key in a:
            for (sa, ba), (sb, bb) in zip(a[key], b[key]):
                assert sa == sb
                assert np.array_equal(ba.data, bb.data)

    def test_flows_differ_across_threads(self, factory):
        flows = factory().flows(1, 2)
        a = np.concatenate([b.keys for _s, b in flows[(0, 0)]])
        b = np.concatenate([b.keys for _s, b in flows[(0, 1)]])
        assert not np.array_equal(a, b)

    def test_timestamps_monotone_per_stream(self, factory):
        """The watermark contract: per (flow, stream) strictly increasing."""
        workload = factory()
        flows = workload.flows(1, 2)
        for flow in flows.values():
            per_stream: dict = {}
            for stream, batch in flow:
                ts = batch.timestamps
                if len(ts) == 0:
                    continue
                assert np.all(np.diff(ts) > 0)
                if stream in per_stream:
                    assert ts[0] > per_stream[stream]
                per_stream[stream] = ts[-1]

    def test_timestamps_within_span(self, factory):
        workload = factory()
        flows = workload.flows(1, 1)
        for flow in flows.values():
            for _stream, batch in flow:
                assert batch.timestamps.max() < workload.span_ms
                assert batch.timestamps.min() >= 0

    def test_query_validates_and_matches_schema(self, factory):
        workload = factory()
        query = workload.build_query()
        query.validate()
        stream_names = {s.name for s in query.streams}
        flows = workload.flows(1, 1)
        for flow in flows.values():
            for stream, _batch in flow:
                assert stream in stream_names

    def test_batch_size_respected(self, factory):
        workload = factory()
        for flow in workload.flows(1, 1).values():
            for _stream, batch in flow:
                assert len(batch) <= workload.batch_records


class TestYsbSpecifics:
    def test_record_bytes_78(self):
        assert YsbWorkload().build_query().streams[0].schema.record_bytes == 78

    def test_event_types_cover_range(self):
        workload = YsbWorkload(records_per_thread=3000, key_range=10)
        flow = workload.flows(1, 1)[(0, 0)]
        types = np.concatenate([b.col("event_type") for _s, b in flow])
        assert set(np.unique(types)) == {0, 1, 2}

    def test_zipf_skews_keys(self):
        uniform = YsbWorkload(records_per_thread=5000, key_range=1000)
        skewed = YsbWorkload(records_per_thread=5000, key_range=1000, zipf_z=1.5)
        u_keys = np.concatenate([b.keys for _s, b in uniform.flows(1, 1)[(0, 0)]])
        z_keys = np.concatenate([b.keys for _s, b in skewed.flows(1, 1)[(0, 0)]])
        assert len(np.unique(z_keys)) < len(np.unique(u_keys)) / 2


class TestJoinSpecifics:
    def test_ratio_roughly_4_to_1(self):
        workload = Nexmark8Workload(records_per_thread=1000, sellers=50)
        flow = workload.flows(1, 1)[(0, 0)]
        auctions = sum(len(b) for s, b in flow if s == "auctions")
        sellers = sum(len(b) for s, b in flow if s == "sellers")
        assert auctions == pytest.approx(4 * sellers, rel=0.05)

    def test_every_auction_has_valid_seller_key(self):
        workload = Nexmark8Workload(records_per_thread=1000, sellers=50)
        flow = workload.flows(1, 1)[(0, 0)]
        auction_keys = np.concatenate([b.keys for s, b in flow if s == "auctions"])
        assert auction_keys.min() >= 0
        assert auction_keys.max() < 50

    def test_record_sizes_match_paper(self):
        query = Nexmark8Workload().build_query()
        sizes = {s.name: s.schema.record_bytes for s in query.streams}
        assert sizes == {"auctions": 269, "sellers": 206}
        query11 = Nexmark11Workload().build_query()
        sizes11 = {s.name: s.schema.record_bytes for s in query11.streams}
        assert sizes11 == {"bids": 32, "sellers": 206}


class TestValidation:
    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigError):
            YsbWorkload(records_per_thread=0)
        with pytest.raises(ConfigError):
            YsbWorkload(batch_records=0)
        with pytest.raises(ConfigError):
            YsbWorkload().flows(0, 1)

    def test_span_too_small_for_strict_timestamps(self):
        with pytest.raises(ConfigError, match="strictly increasing"):
            ReadOnlyWorkload(records_per_thread=1000, span_ms=10).flows(1, 1)
