"""Tests for the Workload base-class contract."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.records import Schema
from repro.workloads.base import Workload


class _Toy(Workload):
    name = "toy"
    schema = Schema("toy", (("ts", "i8"), ("key", "i8")), record_bytes=16)

    @property
    def default_span_ms(self):
        return 100_000

    def _flow(self, node, thread):
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        ts = np.sort(rng.choice(self.span_ms, size=n, replace=False)).astype(np.int64)
        key = rng.integers(0, 10, size=n, dtype=np.int64)
        return list(self._batches(self.schema, "toy", ts=ts, key=key))


def test_span_override():
    assert _Toy(span_ms=5000).span_ms == 5000
    assert _Toy().span_ms == 100_000


def test_batches_cut_to_batch_records():
    workload = _Toy(records_per_thread=1000, batch_records=300)
    flow = workload.flows(1, 1)[(0, 0)]
    lengths = [len(batch) for _s, batch in flow]
    assert lengths == [300, 300, 300, 100]


def test_total_records():
    assert _Toy(records_per_thread=100).total_records(3, 4) == 1200


def test_rng_isolated_per_workload_name():
    class _Other(_Toy):
        name = "other-toy"

    a = _Toy(seed=5).flows(1, 1)[(0, 0)]
    b = _Other(seed=5).flows(1, 1)[(0, 0)]
    assert not np.array_equal(a[0][1].keys, b[0][1].keys)


def test_validation():
    with pytest.raises(ConfigError):
        _Toy(records_per_thread=-1)
    with pytest.raises(ConfigError):
        _Toy().flows(1, 0)


def test_abstract_methods_required():
    workload = Workload()
    with pytest.raises(NotImplementedError):
        workload.build_query()
    with pytest.raises(NotImplementedError):
        _ = workload.span_ms
    with pytest.raises(NotImplementedError):
        workload._flow(0, 0)
