"""Tests for key distributions and timestamp synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import RngTree
from repro.workloads.distributions import (
    distinct_fraction,
    effective_working_set_keys,
    monotone_timestamps,
    pareto_keys,
    uniform_keys,
    zipf_keys,
)


def rng():
    return RngTree(11).generator("test")


class TestMonotoneTimestamps:
    def test_strictly_increasing(self):
        ts = monotone_timestamps(1000, 100_000, rng())
        assert np.all(np.diff(ts) > 0)

    def test_span_respected(self):
        ts = monotone_timestamps(1000, 100_000, rng())
        assert ts.min() >= 0
        assert ts.max() < 100_000

    def test_empty(self):
        assert len(monotone_timestamps(0, 100, rng())) == 0

    def test_span_too_small(self):
        with pytest.raises(ConfigError):
            monotone_timestamps(100, 50, rng())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 500), st.integers(0, 10))
    def test_property_strict_even_at_tight_span(self, count, slack):
        ts = monotone_timestamps(count, count + slack, rng())
        assert np.all(np.diff(ts) > 0)
        assert ts.max() < count + slack


class TestKeyDistributions:
    def test_uniform_range(self):
        keys = uniform_keys(10_000, 100, rng())
        assert keys.min() >= 0
        assert keys.max() < 100
        assert len(np.unique(keys)) == 100

    def test_zipf_zero_is_uniform(self):
        a = zipf_keys(100, 50, 0.0, rng())
        assert a.min() >= 0 and a.max() < 50

    def test_zipf_concentration_grows_with_z(self):
        low = zipf_keys(20_000, 10_000, 0.2, rng())
        high = zipf_keys(20_000, 10_000, 1.8, rng())
        assert distinct_fraction(high) < distinct_fraction(low)

    def test_zipf_range(self):
        keys = zipf_keys(1000, 100, 1.0, rng())
        assert keys.min() >= 0 and keys.max() < 100

    def test_zipf_negative_z_rejected(self):
        with pytest.raises(ConfigError):
            zipf_keys(10, 10, -0.5, rng())

    def test_pareto_heavy_tail(self):
        keys = pareto_keys(50_000, 1_000_000, rng())
        assert keys.min() >= 0 and keys.max() < 1_000_000
        # Heavy hitters: top-10% of keys carry most of the mass.
        hot = effective_working_set_keys(keys, coverage=0.8)
        assert hot < len(np.unique(keys)) / 2

    def test_pareto_bad_args(self):
        with pytest.raises(ConfigError):
            pareto_keys(10, 0, rng())
        with pytest.raises(ConfigError):
            pareto_keys(10, 10, rng(), shape=0)

    def test_bad_key_range(self):
        with pytest.raises(ConfigError):
            uniform_keys(10, 0, rng())


class TestSkewObservables:
    def test_distinct_fraction(self):
        assert distinct_fraction(np.array([1, 1, 1, 2])) == 0.5
        assert distinct_fraction(np.array([], dtype=np.int64)) == 0.0

    def test_effective_working_set(self):
        keys = np.array([0] * 90 + list(range(1, 11)))
        assert effective_working_set_keys(keys, coverage=0.9) == 1
        assert effective_working_set_keys(np.array([], dtype=np.int64)) == 0
        uniform = np.arange(100)
        assert effective_working_set_keys(uniform, coverage=0.9) == 90
