"""Tests for key distributions and timestamp synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import RngTree
from repro.workloads.distributions import (
    arrival_times,
    burst_envelope,
    distinct_fraction,
    effective_working_set_keys,
    monotone_timestamps,
    pareto_keys,
    tenant_ids,
    uniform_keys,
    zipf_keys,
)


def rng():
    return RngTree(11).generator("test")


class TestMonotoneTimestamps:
    def test_strictly_increasing(self):
        ts = monotone_timestamps(1000, 100_000, rng())
        assert np.all(np.diff(ts) > 0)

    def test_span_respected(self):
        ts = monotone_timestamps(1000, 100_000, rng())
        assert ts.min() >= 0
        assert ts.max() < 100_000

    def test_empty(self):
        assert len(monotone_timestamps(0, 100, rng())) == 0

    def test_span_too_small(self):
        with pytest.raises(ConfigError):
            monotone_timestamps(100, 50, rng())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 500), st.integers(0, 10))
    def test_property_strict_even_at_tight_span(self, count, slack):
        ts = monotone_timestamps(count, count + slack, rng())
        assert np.all(np.diff(ts) > 0)
        assert ts.max() < count + slack


class TestKeyDistributions:
    def test_uniform_range(self):
        keys = uniform_keys(10_000, 100, rng())
        assert keys.min() >= 0
        assert keys.max() < 100
        assert len(np.unique(keys)) == 100

    def test_zipf_zero_is_uniform(self):
        a = zipf_keys(100, 50, 0.0, rng())
        assert a.min() >= 0 and a.max() < 50

    def test_zipf_concentration_grows_with_z(self):
        low = zipf_keys(20_000, 10_000, 0.2, rng())
        high = zipf_keys(20_000, 10_000, 1.8, rng())
        assert distinct_fraction(high) < distinct_fraction(low)

    def test_zipf_range(self):
        keys = zipf_keys(1000, 100, 1.0, rng())
        assert keys.min() >= 0 and keys.max() < 100

    def test_zipf_negative_z_rejected(self):
        with pytest.raises(ConfigError):
            zipf_keys(10, 10, -0.5, rng())

    def test_pareto_heavy_tail(self):
        keys = pareto_keys(50_000, 1_000_000, rng())
        assert keys.min() >= 0 and keys.max() < 1_000_000
        # Heavy hitters: top-10% of keys carry most of the mass.
        hot = effective_working_set_keys(keys, coverage=0.8)
        assert hot < len(np.unique(keys)) / 2

    def test_pareto_bad_args(self):
        with pytest.raises(ConfigError):
            pareto_keys(10, 0, rng())
        with pytest.raises(ConfigError):
            pareto_keys(10, 10, rng(), shape=0)

    def test_bad_key_range(self):
        with pytest.raises(ConfigError):
            uniform_keys(10, 0, rng())


class TestSkewObservables:
    def test_distinct_fraction(self):
        assert distinct_fraction(np.array([1, 1, 1, 2])) == 0.5
        assert distinct_fraction(np.array([], dtype=np.int64)) == 0.0

    def test_effective_working_set(self):
        keys = np.array([0] * 90 + list(range(1, 11)))
        assert effective_working_set_keys(keys, coverage=0.9) == 1
        assert effective_working_set_keys(np.array([], dtype=np.int64)) == 0
        uniform = np.arange(100)
        assert effective_working_set_keys(uniform, coverage=0.9) == 90


class TestBurstEnvelope:
    def test_mean_is_normalised_to_one(self):
        envelope = burst_envelope(
            10_000, diurnal_amplitude=0.4, flash_at_frac=0.5,
            flash_magnitude=4.0,
        )
        assert envelope.mean() == pytest.approx(1.0)
        assert (envelope > 0).all()

    def test_flash_window_is_elevated(self):
        count = 1000
        envelope = burst_envelope(
            count, flash_at_frac=0.5, flash_duration_frac=0.1,
            flash_magnitude=3.0,
        )
        inside = envelope[500:600]
        outside = np.concatenate([envelope[:500], envelope[600:]])
        assert inside.mean() == pytest.approx(3.0 * outside.mean(), rel=0.01)

    def test_flat_envelope_without_knobs(self):
        np.testing.assert_allclose(burst_envelope(100), np.ones(100))

    def test_diurnal_swings_around_the_mean(self):
        envelope = burst_envelope(1000, diurnal_amplitude=0.5)
        assert envelope.max() == pytest.approx(1.5, rel=0.01)
        assert envelope.min() == pytest.approx(0.5, rel=0.01)

    def test_zero_count_is_empty(self):
        assert len(burst_envelope(0, flash_at_frac=0.5)) == 0

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"count": -1}, "count"),
            ({"count": 10, "diurnal_amplitude": 1.0}, "diurnal_amplitude"),
            ({"count": 10, "diurnal_amplitude": -0.1}, "diurnal_amplitude"),
            ({"count": 10, "flash_magnitude": 0.9}, "flash_magnitude"),
            ({"count": 10, "flash_duration_frac": 0.0}, "flash_duration_frac"),
            ({"count": 10, "flash_duration_frac": 1.1}, "flash_duration_frac"),
            ({"count": 10, "flash_at_frac": 1.0}, "flash_at_frac"),
            ({"count": 10, "flash_at_frac": -0.2}, "flash_at_frac"),
        ],
    )
    def test_nonsense_rejected(self, kwargs, match):
        count = kwargs.pop("count")
        with pytest.raises(ConfigError, match=match):
            burst_envelope(count, **kwargs)


class TestArrivalTimes:
    def test_constant_rate_is_a_uniform_drip(self):
        arrivals = arrival_times(5, 10.0)
        np.testing.assert_allclose(arrivals, [0.1, 0.2, 0.3, 0.4, 0.5])

    def test_arrivals_are_strictly_increasing(self):
        envelope = burst_envelope(
            2000, diurnal_amplitude=0.3, flash_at_frac=0.25,
            flash_magnitude=5.0,
        )
        arrivals = arrival_times(2000, 1e4, envelope)
        assert (np.diff(arrivals) > 0).all()

    def test_flash_window_arrives_denser(self):
        count = 1000
        envelope = burst_envelope(
            count, flash_at_frac=0.5, flash_duration_frac=0.1,
            flash_magnitude=3.0,
        )
        arrivals = arrival_times(count, 1e3, envelope)
        gaps = np.diff(arrivals)
        inside = gaps[500:599].mean()
        outside = gaps[:499].mean()
        assert inside == pytest.approx(outside / 3.0, rel=0.01)

    def test_mean_rate_is_preserved_by_the_envelope(self):
        # Normalised envelope: the last arrival ~= count / rate either way.
        count, rate = 5000, 2e4
        flat = arrival_times(count, rate)
        shaped = arrival_times(count, rate, burst_envelope(
            count, diurnal_amplitude=0.3,
        ))
        assert shaped[-1] == pytest.approx(flat[-1], rel=0.05)

    def test_zero_count_is_empty(self):
        assert len(arrival_times(0, 100.0)) == 0

    def test_nonsense_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            arrival_times(10, 0.0)
        with pytest.raises(ConfigError, match="count"):
            arrival_times(-1, 10.0)
        with pytest.raises(ConfigError, match="entries"):
            arrival_times(10, 10.0, np.ones(5))
        with pytest.raises(ConfigError, match="positive"):
            arrival_times(3, 10.0, np.array([1.0, 0.0, 1.0]))


class TestTenantIds:
    def test_key_space_striping(self):
        keys = np.array([0, 1, 2, 3, 4, 9], dtype=np.int64)
        np.testing.assert_array_equal(
            tenant_ids(keys, 4), [0, 1, 2, 3, 0, 1]
        )

    def test_every_tenant_in_range(self):
        keys = uniform_keys(1000, 512, rng())
        ids = tenant_ids(keys, 7)
        assert ids.min() >= 0 and ids.max() < 7

    def test_nonpositive_tenants_rejected(self):
        with pytest.raises(ConfigError, match="tenants"):
            tenant_ids(np.arange(4), 0)
