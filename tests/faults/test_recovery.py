"""End-to-end fault-injection scenarios against the Slash engine.

Each test runs a small YSB deployment twice — once fail-free, once under
an injected fault — and checks the recovery invariants: zero lost window
results, exactly-once delta admission, and seed-reproducibility.
"""

import pytest

from repro.common.errors import FaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.harness.experiments import _compare_aggregates
from repro.harness.runner import build_engine, make_workload

NODES = 3
THREADS = 2


def _workload():
    return make_workload("ysb", records_per_thread=600, batch_records=150)


def _run_baseline():
    workload = _workload()
    return build_engine("slash", NODES).run(
        workload.build_query(), workload.flows(NODES, THREADS)
    )


def _overrides(horizon: float) -> dict:
    return dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )


def _run_faulted(plan: FaultPlan, horizon: float):
    workload = _workload()
    engine = build_engine(
        "slash", NODES, fault_plan=plan, fault_overrides=_overrides(horizon)
    )
    return engine.run(workload.build_query(), workload.flows(NODES, THREADS))


@pytest.fixture(scope="module")
def baseline():
    return _run_baseline()


class TestLeaderCrash:
    def test_crash_mid_epoch_loses_zero_windows(self, baseline):
        plan = FaultPlan.preset("leader-crash", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        missing, extra, mismatched = _compare_aggregates(
            baseline.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []
        assert faulted.emitted == baseline.emitted

    def test_recovery_metadata_reported(self, baseline):
        plan = FaultPlan.preset("leader-crash", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        info = faulted.extra["faults"]
        (victim,) = plan.crash_targets()
        crash = info["crashes"][str(victim)]
        assert crash["promoted"] == 0  # lowest surviving id takes over
        assert crash["recovery_s"] > 0.0
        assert info["checkpoints_taken"] >= 1

    def test_same_seed_crash_runs_are_identical(self, baseline):
        plan = FaultPlan.preset("leader-crash", 7, NODES, baseline.sim_seconds)
        first = _run_faulted(plan, baseline.sim_seconds)
        second = _run_faulted(plan, baseline.sim_seconds)
        assert first.aggregates == second.aggregates
        assert first.sim_seconds == second.sim_seconds
        assert first.emitted == second.emitted
        assert first.counters.retransmits == second.counters.retransmits


class TestDuplicateDelta:
    def test_duplicated_chunk_does_not_change_totals(self, baseline):
        # The ledger must admit each (executor, epoch, partition) delta
        # once: re-sent chunks change no CRDT aggregate (YSB counts are
        # ints, so equality here is exact).
        plan = FaultPlan.preset("duplicate-delta", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        assert faulted.extra["faults"]["deltas_duplicated"] >= 1
        assert faulted.aggregates == baseline.aggregates


class TestDropChunk:
    def test_dropped_chunks_are_retransmitted(self, baseline):
        plan = FaultPlan.preset("drop-chunk", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        info = faulted.extra["faults"]
        assert info["writes_dropped"] >= 1
        assert faulted.counters.retransmits >= info["writes_dropped"]
        assert faulted.aggregates == baseline.aggregates


class TestCreditStarvation:
    def test_starved_producers_recover(self, baseline):
        plan = FaultPlan.preset("credit-starvation", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        assert faulted.aggregates == baseline.aggregates


class TestUnsupportedPlans:
    def test_crash_recovery_rejected_for_join_queries(self):
        # Join state is not covered by the checkpoint/replay protocol;
        # the injector must refuse rather than silently lose results.
        workload = make_workload("nb8", records_per_thread=200, batch_records=50)
        plan = FaultPlan(events=(FaultEvent(FaultKind.NODE_CRASH, 1e-6, 1),))
        engine = build_engine(
            "slash", 2, fault_plan=plan, fault_overrides=_overrides(1e-4)
        )
        with pytest.raises(FaultError):
            engine.run(workload.build_query(), workload.flows(2, 1))

    def test_non_crash_faults_allowed_for_join_queries(self):
        workload = make_workload("nb8", records_per_thread=200, batch_records=50)
        base = build_engine("slash", 2).run(
            workload.build_query(), workload.flows(2, 1)
        )
        plan = FaultPlan.preset("drop-chunk", 3, 2, base.sim_seconds)
        engine = build_engine(
            "slash", 2, fault_plan=plan,
            fault_overrides=_overrides(base.sim_seconds),
        )
        faulted = engine.run(workload.build_query(), workload.flows(2, 1))
        assert faulted.sorted_join_pairs() == base.sorted_join_pairs()


class TestFailFreePath:
    def test_empty_plan_disables_fault_mode(self, baseline):
        workload = _workload()
        engine = build_engine("slash", NODES, fault_plan=FaultPlan())
        result = engine.run(workload.build_query(), workload.flows(NODES, THREADS))
        assert "faults" not in result.extra
        # Bit-identical to a run with no plan at all.
        assert result.aggregates == baseline.aggregates
        assert result.sim_seconds == baseline.sim_seconds
