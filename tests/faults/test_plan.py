"""Tests for fault plans: validation and seed-reproducibility."""

import pytest

from repro.common.errors import FaultError
from repro.faults.plan import (
    _SECOND_CRASH_GAP_S,
    MULTI_CRASH_PRESETS,
    PRESETS,
    FaultEvent,
    FaultKind,
    FaultPlan,
)


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(FaultError, match="past"):
            FaultEvent(FaultKind.NODE_CRASH, -1.0, 0)

    def test_rejects_negative_duration(self):
        with pytest.raises(FaultError, match="duration"):
            FaultEvent(FaultKind.STALL, 1.0, 0, duration_s=-0.5)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(FaultError, match="count"):
            FaultEvent(FaultKind.DROP_CHUNK, 1.0, 0, count=0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(FaultError, match="factor"):
            FaultEvent(FaultKind.NIC_FLAP, 1.0, 0, factor=0.0)

    def test_rejects_pair_target_where_scalar_required(self):
        with pytest.raises(FaultError, match="pair targets"):
            FaultEvent(FaultKind.NODE_CRASH, 1.0, (0, 1))

    def test_rejects_bool_target(self):
        with pytest.raises(FaultError, match="single executor"):
            FaultEvent(FaultKind.NODE_CRASH, 1.0, True)

    def test_rejects_zero_duration_partition(self):
        with pytest.raises(FaultError, match="positive.*duration"):
            FaultEvent(FaultKind.NET_PARTITION, 1.0, 1, duration_s=0.0)
        with pytest.raises(FaultError, match="positive.*duration"):
            FaultEvent(FaultKind.ASYM_PARTITION, 1.0, 1, duration_s=0.0)


class TestFaultPlanValidation:
    def test_target_out_of_range(self):
        plan = FaultPlan(events=(FaultEvent(FaultKind.NODE_CRASH, 1.0, 5),))
        with pytest.raises(FaultError, match="targets executor 5"):
            plan.validate(executors=3)

    def test_double_crash_of_same_node_rejected(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.NODE_CRASH, 1.0, 1),
                FaultEvent(FaultKind.NODE_CRASH, 2.0, 1),
            )
        )
        with pytest.raises(FaultError, match="once per plan"):
            plan.validate(executors=3)

    def test_crashing_every_executor_rejected(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.NODE_CRASH, 1.0, 0),
                FaultEvent(FaultKind.NODE_CRASH, 2.0, 1),
            )
        )
        with pytest.raises(FaultError, match="survive"):
            plan.validate(executors=2)

    def test_event_against_dead_node_rejected(self):
        # A stall scheduled after its target's crash can never fire;
        # accepting it would silently weaken the plan.
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.NODE_CRASH, 1.0, 1),
                FaultEvent(FaultKind.STALL, 2.0, 1, duration_s=0.5),
            )
        )
        with pytest.raises(FaultError, match="never fire"):
            plan.validate(executors=3)

    def test_event_beyond_horizon_rejected(self):
        plan = FaultPlan(events=(FaultEvent(FaultKind.NODE_CRASH, 5.0, 1),))
        plan.validate(executors=3)  # fine without a horizon
        with pytest.raises(FaultError, match="horizon"):
            plan.validate(executors=3, horizon_s=2.0)

    def test_valid_plan_passes(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.NODE_CRASH, 1.0, 1),
                FaultEvent(FaultKind.NIC_FLAP, 0.5, 0, duration_s=1.0, factor=0.1),
            )
        )
        plan.validate(executors=3)
        assert plan.crash_targets() == [1]


class TestPresets:
    @pytest.mark.parametrize("name", PRESETS)
    def test_every_preset_builds_and_validates(self, name):
        plan = FaultPlan.preset(name, seed=7, executors=3, horizon_s=1.0)
        plan.validate(executors=3)
        assert len(plan) >= 1
        assert plan.seed == 7

    @pytest.mark.parametrize("name", PRESETS)
    def test_same_seed_same_schedule(self, name):
        a = FaultPlan.preset(name, seed=42, executors=4, horizon_s=2.5)
        b = FaultPlan.preset(name, seed=42, executors=4, horizon_s=2.5)
        assert a == b

    def test_different_seeds_differ(self):
        plans = {
            FaultPlan.preset("leader-crash", seed=s, executors=8, horizon_s=1.0)
            for s in range(20)
        }
        assert len(plans) > 1

    def test_crash_presets_never_target_executor_zero(self):
        # Executor 0 is the deterministic promotion target; presets must
        # leave it alive.
        for seed in range(50):
            plan = FaultPlan.preset("leader-crash", seed, executors=3, horizon_s=1.0)
            assert plan.crash_targets() == [plan.events[0].target]
            assert plan.events[0].target != 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(FaultError, match="unknown fault preset"):
            FaultPlan.preset("meteor-strike", seed=1, executors=2, horizon_s=1.0)

    def test_needs_two_executors(self):
        with pytest.raises(FaultError, match="at least 2"):
            FaultPlan.preset("leader-crash", seed=1, executors=1, horizon_s=1.0)

    @pytest.mark.parametrize("name", MULTI_CRASH_PRESETS)
    def test_multi_crash_presets_need_three_executors(self, name):
        with pytest.raises(FaultError, match="at least 3"):
            FaultPlan.preset(name, seed=1, executors=2, horizon_s=1.0)

    @pytest.mark.parametrize("name", MULTI_CRASH_PRESETS)
    def test_second_crash_lands_after_the_fence_window(self, name):
        # The second crash must come at least the fixed fence cost after
        # the first: two deaths inside one fence window destroy the
        # majority and permanently wedge the cluster (split-brain-safe,
        # but unrecoverable — see TestQuorumLoss in test_cascades.py).
        for seed in range(20):
            plan = FaultPlan.preset(name, seed, executors=3, horizon_s=1.0)
            first, second = plan.events
            assert second.at_s - first.at_s >= _SECOND_CRASH_GAP_S

    def test_cascade_second_crash_hits_promotion_target(self):
        # Executor 0 is the deterministic promotion target; killing it
        # second is what makes the cascade a takeover-of-the-takeover.
        plan = FaultPlan.preset("cascade", seed=9, executors=3, horizon_s=1.0)
        assert plan.crash_targets()[1] == 0

    def test_buddy_crash_kills_buddy_before_victim(self):
        plan = FaultPlan.preset("buddy-crash", seed=9, executors=3, horizon_s=1.0)
        buddy, victim = (e.target for e in plan.events)
        assert buddy == (victim + 1) % 3


class TestGrayFaultValidation:
    """slow-node / jitter: the PR's gray-failure kinds."""

    def test_slow_node_factor_must_be_a_slowdown(self):
        # factor is the fraction of nominal speed: 1.0 means "not slow".
        with pytest.raises(FaultError, match=r"\(0, 1\)"):
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=1.0, factor=1.0)
        with pytest.raises(FaultError, match=r"\(0, 1\)"):
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=1.0, factor=2.0)
        with pytest.raises(FaultError, match="positive"):
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=1.0, factor=0.0)
        with pytest.raises(FaultError, match="positive"):
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=1.0, factor=-0.5)

    def test_slow_node_needs_a_positive_duration(self):
        with pytest.raises(FaultError, match="duration"):
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=0.0, factor=0.5)

    def test_jitter_factor_must_inflate(self):
        with pytest.raises(FaultError, match="> 1"):
            FaultEvent(FaultKind.JITTER, 1.0, 0, duration_s=1.0, factor=1.0)

    def test_jitter_needs_a_positive_duration(self):
        with pytest.raises(FaultError, match="duration"):
            FaultEvent(FaultKind.JITTER, 1.0, 0, duration_s=0.0, factor=4.0)

    def test_peer_is_jitter_only(self):
        with pytest.raises(FaultError, match="only meaningful for"):
            FaultEvent(FaultKind.NIC_FLAP, 1.0, 0, duration_s=1.0, peer=1)

    def test_peer_cannot_equal_the_target(self):
        with pytest.raises(FaultError, match="no link to itself"):
            FaultEvent(
                FaultKind.JITTER, 1.0, 0, duration_s=1.0, factor=4.0, peer=0
            )

    def test_jitter_peer_out_of_range_names_the_missing_link(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.JITTER, 1.0, 0, duration_s=1.0, factor=4.0,
                       peer=5),
        ))
        with pytest.raises(FaultError, match="there is no such link"):
            plan.validate(executors=3)

    def test_overlapping_slow_node_windows_on_one_target_rejected(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=2.0, factor=0.5),
            FaultEvent(FaultKind.SLOW_NODE, 2.0, 0, duration_s=1.0, factor=0.25),
        ))
        with pytest.raises(FaultError, match="overlapping slow-node"):
            plan.validate(executors=3)

    def test_disjoint_or_cross_target_slowdowns_are_fine(self):
        FaultPlan(events=(
            FaultEvent(FaultKind.SLOW_NODE, 1.0, 0, duration_s=1.0, factor=0.5),
            FaultEvent(FaultKind.SLOW_NODE, 2.0, 0, duration_s=1.0, factor=0.25),
            FaultEvent(FaultKind.SLOW_NODE, 1.5, 1, duration_s=2.0, factor=0.5),
        )).validate(executors=3)

    def test_gray_presets_exist_and_build_valid_plans(self):
        for name in ("slow-node", "jitter"):
            assert name in PRESETS
            plan = FaultPlan.preset(name, seed=4, executors=3, horizon_s=1.0)
            plan.validate(executors=3, horizon_s=1.0)
            (event,) = plan.events
            assert event.kind.value == name
            assert event.duration_s > 0

    def test_misspelled_gray_preset_gets_a_suggestion(self):
        with pytest.raises(FaultError, match="slow-node"):
            FaultPlan.preset("slow-nod", seed=1, executors=3, horizon_s=1.0)
        with pytest.raises(FaultError, match="jitter"):
            FaultPlan.preset("jitters", seed=1, executors=3, horizon_s=1.0)
