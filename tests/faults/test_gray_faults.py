"""Gray faults end-to-end: slower, later — but never wrong.

slow-node and jitter are pure data-plane degradations; a faulted run
must produce byte-identical (window, key) aggregates to the fail-free
baseline, just at a later simulated instant.  The failure detector must
stay quiet throughout (gray faults heartbeat normally).
"""

import pytest

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.runtime import Scenario, run_scenario
from repro.runtime.oracle import diff_results

WORKLOAD = {"records_per_thread": 300, "batch_records": 64}


def run(fault_plan=None, engine="slash"):
    return run_scenario(Scenario(
        engine=engine, workload="ysb", nodes=3, threads=2, seed=5,
        workload_overrides=dict(WORKLOAD), fault_plan=fault_plan,
    ))


@pytest.fixture(scope="module")
def baseline():
    return run()


def test_slow_node_changes_timing_not_results(baseline):
    plan = FaultPlan([FaultEvent(
        FaultKind.SLOW_NODE, at_s=1e-5, target=0, duration_s=10.0,
        factor=0.25,
    )], seed=5)
    faulted = run(fault_plan=plan)
    diff = diff_results(baseline, faulted)
    assert diff.ok, diff.describe()
    # A quarter-speed node must actually cost simulated time.
    assert faulted.sim_seconds > baseline.sim_seconds


def test_jitter_changes_timing_not_results(baseline):
    plan = FaultPlan([FaultEvent(
        FaultKind.JITTER, at_s=1e-5, target=0, duration_s=10.0,
        factor=16.0,
    )], seed=5)
    faulted = run(fault_plan=plan)
    diff = diff_results(baseline, faulted)
    assert diff.ok, diff.describe()
    assert faulted.sim_seconds >= baseline.sim_seconds


def test_gray_faults_never_trip_the_failure_detector(baseline):
    # An aggressive jitter window covering the whole run: membership
    # must still see every heartbeat (the datagram path is not
    # jittered), so nobody is suspected and nothing recovers.
    plan = FaultPlan([FaultEvent(
        FaultKind.JITTER, at_s=1e-5, target=0, duration_s=10.0,
        factor=64.0,
    )], seed=5)
    faulted = run(fault_plan=plan)
    faults = faulted.extra.get("faults", {})
    assert faults.get("recoveries", 0) == 0
    assert not faults.get("crashed", [])
