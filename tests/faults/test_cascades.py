"""Cascading-failure scenarios: second faults landing mid-recovery.

The cascade preset kills a leader, then kills executor 0 — the default
promotion target — while the first recovery is still replaying, forcing
a takeover of the takeover.  The buddy-crash preset kills a victim's
checkpoint buddy first, forcing recovery to fall back to full input
replay (checkpoint boundary -1).  Both must lose zero results, admit
every delta exactly once, and replay deterministically under the same
seed.  Two near-simultaneous crashes that destroy the majority must
fail fast with a quorum-loss error instead of wedging forever.
"""

import pytest

from repro.common.errors import FaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.harness.experiments import _compare_aggregates
from repro.harness.runner import build_engine, make_workload

NODES = 3
THREADS = 2


def _workload():
    return make_workload("ysb", records_per_thread=600, batch_records=150)


def _overrides(horizon: float) -> dict:
    return dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )


def _run_faulted(plan: FaultPlan, horizon: float):
    workload = _workload()
    engine = build_engine(
        "slash", NODES, fault_plan=plan, fault_overrides=_overrides(horizon)
    )
    return engine.run(workload.build_query(), workload.flows(NODES, THREADS))


@pytest.fixture(scope="module")
def baseline():
    workload = _workload()
    return build_engine("slash", NODES).run(
        workload.build_query(), workload.flows(NODES, THREADS)
    )


class TestCascade:
    def test_both_victims_recover_with_zero_lost_results(self, baseline):
        plan = FaultPlan.preset("cascade", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        info = faulted.extra["faults"]
        for victim in plan.crash_targets():
            assert info["crashes"][str(victim)]["recovered_at"] > 0.0
        missing, extra, mismatched = _compare_aggregates(
            baseline.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []
        assert faulted.emitted == baseline.emitted

    def test_promoted_leader_crash_reroutes_takeover(self, baseline):
        # The second crash always hits executor 0 — the lowest surviving
        # id and therefore the default promotion target for the first
        # victim.  Both recoveries must end on the one true survivor.
        plan = FaultPlan.preset("cascade", 7, NODES, baseline.sim_seconds)
        first_victim, second_victim = plan.crash_targets()
        assert second_victim == 0
        (survivor,) = set(range(NODES)) - set(plan.crash_targets())
        faulted = _run_faulted(plan, baseline.sim_seconds)
        crashes = faulted.extra["faults"]["crashes"]
        assert crashes[str(first_victim)]["promoted"] == survivor
        assert crashes[str(second_victim)]["promoted"] == survivor
        # The second fence ran against a membership already shrunk by
        # the first confirmed death: quorum of the remaining pair is 1.
        assert crashes[str(second_victim)]["votes"] == 1

    def test_no_split_brain_commits(self, baseline):
        plan = FaultPlan.preset("cascade", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        assert faulted.extra["faults"]["terms"]["split_brain"] == []

    def test_same_seed_cascade_runs_are_identical(self, baseline):
        plan = FaultPlan.preset("cascade", 7, NODES, baseline.sim_seconds)
        first = _run_faulted(plan, baseline.sim_seconds)
        second = _run_faulted(plan, baseline.sim_seconds)
        assert first.aggregates == second.aggregates
        assert first.sim_seconds == second.sim_seconds
        assert first.emitted == second.emitted
        assert first.counters.retransmits == second.counters.retransmits


class TestBuddyCrash:
    def test_victim_falls_back_to_full_replay(self, baseline):
        # The buddy holding the victim's replicated checkpoint died
        # first, so no restorable boundary exists: recovery must rebuild
        # the victim's partitions from the very start of the input.
        plan = FaultPlan.preset("buddy-crash", 7, NODES, baseline.sim_seconds)
        buddy, victim = plan.crash_targets()
        faulted = _run_faulted(plan, baseline.sim_seconds)
        crash = faulted.extra["faults"]["crashes"][str(victim)]
        assert crash["checkpoint_boundary"] == -1
        assert crash["recovered_at"] > 0.0

    def test_full_replay_loses_zero_results(self, baseline):
        plan = FaultPlan.preset("buddy-crash", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        missing, extra, mismatched = _compare_aggregates(
            baseline.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []
        assert faulted.extra["faults"]["terms"]["split_brain"] == []


class TestQuorumLoss:
    def test_majority_loss_fails_fast_instead_of_wedging(self, baseline):
        # Two crashes inside the fence window leave one live member of
        # three, and neither death can ever be confirmed by a majority.
        # That wedge is split-brain-safe but unrecoverable; the injector
        # must raise rather than let the simulation spin forever.
        at = baseline.sim_seconds * 0.3
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.NODE_CRASH, at, 1),
            FaultEvent(FaultKind.NODE_CRASH, at + 1e-7, 2),
        ))
        with pytest.raises(FaultError, match="quorum permanently lost"):
            _run_faulted(plan, baseline.sim_seconds)
