"""Async consistent snapshots: oracle tests, strategy gates, invariants.

The tentpole guarantee: a run recovered through Chandy–Lamport marker
rounds (``async-snapshot``) produces *exactly* the results of the
fail-free run — and of the sequential reference oracle — on the same
seed, for Slash and for the crash-recoverable UpPar alike.
"""

import pytest

from repro.common.errors import CapabilityError
from repro.faults.plan import FaultPlan
from repro.runtime import (
    REGISTRY,
    STRATEGY_ASYNC_SNAPSHOT,
    STRATEGY_EPOCH_BUDDY,
    Scenario,
    diff_aggregates,
    run_scenario,
)

NODES = 3
THREADS = 2
WORKLOAD_OVERRIDES = {"records_per_thread": 600}


def _scenario(engine, plan=None, overrides=None, recovery=None, sanitize=False):
    return Scenario(
        engine=engine,
        workload="ysb",
        nodes=NODES,
        threads=THREADS,
        workload_overrides=dict(WORKLOAD_OVERRIDES),
        fault_plan=plan,
        fault_overrides=dict(overrides or {}),
        recovery_strategy=recovery,
        sanitize=sanitize,
    )


def _overrides(horizon: float) -> dict:
    return dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
        snapshot_interval_s=horizon * 0.04,
    )


def _faulted(engine, preset, baseline, sanitize=False):
    plan = FaultPlan.preset(preset, 7, NODES, baseline.sim_seconds)
    return run_scenario(_scenario(
        engine, plan, _overrides(baseline.sim_seconds),
        recovery=STRATEGY_ASYNC_SNAPSHOT, sanitize=sanitize,
    ))


@pytest.fixture(scope="module")
def reference():
    return run_scenario(_scenario("reference"))


@pytest.fixture(scope="module")
def slash_baseline():
    return run_scenario(_scenario("slash"))


@pytest.fixture(scope="module")
def uppar_baseline():
    return run_scenario(_scenario("uppar"))


class TestSlashAsyncSnapshot:
    def test_leader_crash_matches_sequential_reference(
        self, slash_baseline, reference
    ):
        faulted = _faulted("slash", "leader-crash", slash_baseline)
        missing, extra, mismatched = diff_aggregates(
            reference.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []

    def test_cascade_loses_zero_windows(self, slash_baseline):
        faulted = _faulted("slash", "cascade", slash_baseline)
        missing, extra, mismatched = diff_aggregates(
            slash_baseline.aggregates, faulted.aggregates
        )
        assert (missing, extra, mismatched) == ([], [], [])
        assert faulted.emitted == slash_baseline.emitted

    def test_marker_rounds_complete_and_audit(self, slash_baseline):
        faulted = _faulted("slash", "leader-crash", slash_baseline,
                           sanitize=True)
        info = faulted.extra["faults"]
        assert info["strategy"] == STRATEGY_ASYNC_SNAPSHOT
        assert info["snapshot_rounds_started"] >= 1
        assert info["snapshot_rounds_complete"] >= 1
        checks = faulted.extra["sanitizer_checks"]
        assert checks.get("snapshot-consistency", 0) >= 1

    def test_restore_uses_a_complete_round_only(self, slash_baseline):
        """The victim restores from a completed marker round (or the
        initial checkpoint) — never a capture of an aborted round."""
        faulted = _faulted("slash", "leader-crash", slash_baseline)
        info = faulted.extra["faults"]
        (crash,) = info["crashes"].values()
        assert crash["recovery_s"] > 0.0
        assert crash["replayed_batches"] >= 0


class TestUpparAsyncSnapshot:
    def test_leader_crash_matches_sequential_reference(
        self, uppar_baseline, reference
    ):
        faulted = _faulted("uppar", "leader-crash", uppar_baseline)
        missing, extra, mismatched = diff_aggregates(
            reference.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []

    def test_cascade_matches_sequential_reference(
        self, uppar_baseline, reference
    ):
        faulted = _faulted("uppar", "cascade", uppar_baseline)
        missing, extra, mismatched = diff_aggregates(
            reference.aggregates, faulted.aggregates
        )
        assert (missing, extra, mismatched) == ([], [], [])

    def test_global_restart_metadata(self, uppar_baseline):
        faulted = _faulted("uppar", "leader-crash", uppar_baseline)
        info = faulted.extra["faults"]
        (crash,) = info["crashes"].values()
        assert crash["recovery_s"] > 0.0
        assert crash["replayed_records"] > 0
        assert "checkpoint_boundary" in crash
        # A fenced crash retires the generation and starts a new one.
        assert faulted.extra["generations"] >= 1

    def test_aligned_rounds_pass_the_sanitizer(self, uppar_baseline):
        faulted = _faulted("uppar", "leader-crash", uppar_baseline,
                           sanitize=True)
        info = faulted.extra["faults"]
        assert info["snapshot_rounds_complete"] >= 1
        checks = faulted.extra["sanitizer_checks"]
        assert checks.get("snapshot-consistency", 0) >= 1

    def test_same_seed_runs_are_identical(self, uppar_baseline):
        first = _faulted("uppar", "leader-crash", uppar_baseline)
        second = _faulted("uppar", "leader-crash", uppar_baseline)
        assert first.aggregates == second.aggregates
        assert first.sim_seconds == second.sim_seconds
        assert first.emitted == second.emitted


class TestStrategyGates:
    def test_unknown_strategy_names_known_ones(self):
        plan = FaultPlan.preset("leader-crash", 7, NODES, 1.0)
        with pytest.raises(CapabilityError, match="known strategies"):
            REGISTRY.create("slash", NODES).attach_faults(
                plan, strategy="paxos"
            )

    def test_flink_has_no_recovery_plane(self):
        plan = FaultPlan.preset("nic-flap", 7, NODES, 1.0)
        with pytest.raises(CapabilityError,
                           match="none \\(data-plane faults only\\)"):
            REGISTRY.create("flink", NODES).attach_faults(
                plan, strategy=STRATEGY_ASYNC_SNAPSHOT
            )

    def test_uppar_rejects_epoch_buddy(self):
        plan = FaultPlan.preset("leader-crash", 7, NODES, 1.0)
        with pytest.raises(CapabilityError, match="async-snapshot"):
            REGISTRY.create("uppar", NODES).attach_faults(
                plan, strategy=STRATEGY_EPOCH_BUDDY
            )

    def test_slash_supports_both(self):
        engine = REGISTRY.create("slash", NODES)
        assert STRATEGY_EPOCH_BUDDY in engine.supported_recovery_strategies
        assert STRATEGY_ASYNC_SNAPSHOT in engine.supported_recovery_strategies
        assert engine.default_recovery_strategy == STRATEGY_EPOCH_BUDDY
