"""Partition tolerance: ride out symmetric cuts, fence asymmetric ones.

A symmetric partition silences a node in both directions; retransmission
holds data until the cut heals and no takeover is warranted.  An
asymmetric partition (the node transmits but cannot hear) isolates the
current leader from the quorum: the majority side must fence it, promote
a successor under a bumped term, and the merged post-heal state must
still match the sequential reference oracle exactly.
"""

import pytest

from repro.baselines.reference import SequentialReference
from repro.faults.plan import FaultPlan
from repro.harness.experiments import _compare_aggregates
from repro.harness.runner import build_engine, make_workload

NODES = 3
THREADS = 2


def _workload():
    return make_workload("ysb", records_per_thread=600, batch_records=150)


def _overrides(horizon: float) -> dict:
    return dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )


def _run_faulted(plan: FaultPlan, horizon: float):
    workload = _workload()
    engine = build_engine(
        "slash", NODES, fault_plan=plan, fault_overrides=_overrides(horizon)
    )
    return engine.run(workload.build_query(), workload.flows(NODES, THREADS))


@pytest.fixture(scope="module")
def baseline():
    workload = _workload()
    return build_engine("slash", NODES).run(
        workload.build_query(), workload.flows(NODES, THREADS)
    )


@pytest.fixture(scope="module")
def oracle():
    workload = _workload()
    return SequentialReference().run(
        workload.build_query(), workload.flows(NODES, THREADS)
    )


class TestNetPartition:
    def test_symmetric_cut_is_ridden_out_without_takeover(self, baseline):
        # The cut is short relative to detection: retransmission holds
        # the data until heal, and nobody gets fenced.
        plan = FaultPlan.preset("net-partition", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        info = faulted.extra["faults"]
        assert all("promoted" not in c for c in info["crashes"].values())
        assert info["terms"]["fences"] == []
        (record,) = info["partitions"]
        assert record["symmetric"] is True
        assert record["healed_at"] > record["start_s"]

    def test_symmetric_cut_loses_zero_results(self, baseline):
        plan = FaultPlan.preset("net-partition", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        missing, extra, mismatched = _compare_aggregates(
            baseline.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []
        assert faulted.emitted == baseline.emitted

    def test_heartbeats_actually_crossed_the_cut_boundary(self, baseline):
        # Non-vacuity: the detector ran and the cut really dropped
        # control traffic — otherwise "no takeover" proves nothing.
        plan = FaultPlan.preset("net-partition", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        membership = faulted.extra["faults"]["membership"]
        assert membership["heartbeats_delivered"] > 0
        assert membership["heartbeats_lost"] > 0


class TestAsymPartition:
    def test_isolated_leader_is_fenced_by_majority(self, baseline):
        plan = FaultPlan.preset("asym-partition", 7, NODES, baseline.sim_seconds)
        (victim,) = {e.target for e in plan}
        faulted = _run_faulted(plan, baseline.sim_seconds)
        info = faulted.extra["faults"]
        crash = info["crashes"][str(victim)]
        # The majority side reached quorum and promoted a survivor.
        assert crash["votes"] >= 2
        assert crash["promoted"] != victim
        assert crash["detection_s"] >= 0.0
        assert crash["promotion_s"] > 0.0
        assert crash["mttr_s"] >= crash["promotion_s"]

    def test_no_two_executors_commit_same_partition_same_term(self, baseline):
        # The acceptance invariant: an asym partition isolates the
        # current leader, yet no (partition, term) pair ever sees two
        # committers.  The commit registry proves the check non-vacuous:
        # fenced partitions have commits under their new term.
        plan = FaultPlan.preset("asym-partition", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        terms = faulted.extra["faults"]["terms"]
        assert terms["split_brain"] == []
        assert terms["fences"] != []
        fenced = {f["partition"]: f["new_term"] for f in terms["fences"]}
        assert any(
            f"{partition}:{term}" in terms["commits"]
            for partition, term in fenced.items()
        )

    def test_post_heal_state_matches_sequential_oracle(self, baseline, oracle):
        plan = FaultPlan.preset("asym-partition", 7, NODES, baseline.sim_seconds)
        faulted = _run_faulted(plan, baseline.sim_seconds)
        missing, extra, mismatched = _compare_aggregates(
            oracle.aggregates, faulted.aggregates
        )
        assert missing == []
        assert extra == []
        assert mismatched == []

    def test_same_seed_partition_runs_are_identical(self, baseline):
        plan = FaultPlan.preset("asym-partition", 7, NODES, baseline.sim_seconds)
        first = _run_faulted(plan, baseline.sim_seconds)
        second = _run_faulted(plan, baseline.sim_seconds)
        assert first.aggregates == second.aggregates
        assert first.sim_seconds == second.sim_seconds
        assert first.emitted == second.emitted
        assert first.counters.retransmits == second.counters.retransmits
