"""Test-suite configuration.

Hypothesis runs derandomized: property tests explore the same example
sequence on every run, so the suite's outcome is reproducible (matching
the library's own determinism guarantees).  Set HYPOTHESIS_PROFILE=random
to explore fresh examples locally.
"""

import os

from hypothesis import settings

settings.register_profile("deterministic", derandomize=True, deadline=None)
settings.register_profile("random", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))
