"""Test-suite configuration.

Hypothesis runs derandomized: property tests explore the same example
sequence on every run, so the suite's outcome is reproducible (matching
the library's own determinism guarantees).  Set HYPOTHESIS_PROFILE=random
to explore fresh examples locally.

Randomness outside hypothesis goes through the :class:`RngTree` fixtures
below: ``rng_tree`` is the session root (seed from ``REPRO_TEST_SEED``,
default 7) and ``rng`` derives a per-test stream from the test's node id,
so adding or reordering tests never shifts another test's draws.
"""

import os

import pytest
from hypothesis import settings

from repro.common.rng import RngTree

settings.register_profile("deterministic", derandomize=True, deadline=None)
settings.register_profile("random", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))


@pytest.fixture(scope="session")
def rng_tree() -> RngTree:
    """Session-wide deterministic RNG root (override via REPRO_TEST_SEED)."""
    return RngTree(int(os.environ.get("REPRO_TEST_SEED", "7")))


@pytest.fixture
def rng(rng_tree, request):
    """A numpy generator unique to this test, derived from its node id."""
    return rng_tree.generator("tests", request.node.nodeid)
