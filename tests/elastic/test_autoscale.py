"""Tests for the reactive autoscale decision controller."""

from repro.elastic.autoscale import AutoscaleController


def pressure(stall_s=0.0, backlog=0):
    return {"credit_stall_s": stall_s, "ship_backlog": backlog}


class TestHysteresis:
    def test_sustained_backlog_fires(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=12))
        assert controller.observe(pressure(backlog=9))
        assert controller.fired

    def test_transient_spike_resets_the_streak(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=0))  # calm: reset
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=10))
        assert controller.observe(pressure(backlog=10))

    def test_decision_is_latched(self):
        controller = AutoscaleController(sustain_samples=1, backlog_depth=1)
        assert controller.observe(pressure(backlog=5))
        # Calm samples after the fire keep returning True, uncounted.
        assert controller.observe(pressure())
        assert controller.samples == 1

    def test_stall_signal_reacts_to_the_delta_not_the_total(self):
        controller = AutoscaleController(
            sustain_samples=2, stall_delta_s=1e-3, backlog_depth=10**9
        )
        # The first sample's jump counts, but a *constant* cumulative
        # stall afterwards is history, not pressure: the streak resets.
        assert not controller.observe(pressure(stall_s=5.0))
        assert not controller.observe(pressure(stall_s=5.0))
        assert not controller.observe(pressure(stall_s=5.0))
        # Sustained growth past the threshold rate is pressure.
        assert not controller.observe(pressure(stall_s=5.0 + 4e-3))
        assert controller.observe(pressure(stall_s=5.0 + 8e-3))


class TestReport:
    def test_report_counts_pressured_samples(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        controller.observe(pressure(backlog=10))
        controller.observe(pressure())
        controller.observe(pressure(backlog=10))
        report = controller.report(fired=False)
        assert report["fired"] is False
        assert report["samples"] == 3
        assert report["pressured_samples"] == 2
        assert report["final_streak"] == 1
        assert report["thresholds"]["sustain_samples"] == 3
