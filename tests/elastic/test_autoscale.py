"""Tests for the reactive autoscale decision controller."""

from repro.elastic.autoscale import AutoscaleController


def pressure(stall_s=0.0, backlog=0):
    return {"credit_stall_s": stall_s, "ship_backlog": backlog}


class TestHysteresis:
    def test_sustained_backlog_fires(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=12))
        assert controller.observe(pressure(backlog=9))
        assert controller.fired

    def test_transient_spike_resets_the_streak(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=0))  # calm: reset
        assert not controller.observe(pressure(backlog=10))
        assert not controller.observe(pressure(backlog=10))
        assert controller.observe(pressure(backlog=10))

    def test_decision_is_latched(self):
        controller = AutoscaleController(sustain_samples=1, backlog_depth=1)
        assert controller.observe(pressure(backlog=5))
        # Calm samples after the fire keep returning True, uncounted.
        assert controller.observe(pressure())
        assert controller.samples == 1

    def test_stall_signal_reacts_to_the_delta_not_the_total(self):
        controller = AutoscaleController(
            sustain_samples=2, stall_delta_s=1e-3, backlog_depth=10**9
        )
        # The first sample's jump counts, but a *constant* cumulative
        # stall afterwards is history, not pressure: the streak resets.
        assert not controller.observe(pressure(stall_s=5.0))
        assert not controller.observe(pressure(stall_s=5.0))
        assert not controller.observe(pressure(stall_s=5.0))
        # Sustained growth past the threshold rate is pressure.
        assert not controller.observe(pressure(stall_s=5.0 + 4e-3))
        assert controller.observe(pressure(stall_s=5.0 + 8e-3))


class TestReport:
    def test_report_counts_pressured_samples(self):
        controller = AutoscaleController(sustain_samples=3, backlog_depth=8)
        controller.observe(pressure(backlog=10))
        controller.observe(pressure())
        controller.observe(pressure(backlog=10))
        report = controller.report(fired=False)
        assert report["fired"] is False
        assert report["samples"] == 3
        assert report["pressured_samples"] == 2
        assert report["final_streak"] == 1
        assert report["thresholds"]["sustain_samples"] == 3


class TestOverloadSignal:
    def test_sustained_overload_delay_fires(self):
        controller = AutoscaleController(
            sustain_samples=3, backlog_depth=10**9, stall_delta_s=1e9,
            overload_delay_s=0.05,
        )
        sample = dict(pressure(), overload_delay_s=0.1)
        assert not controller.observe(dict(sample))
        assert not controller.observe(dict(sample))
        assert controller.observe(dict(sample))

    def test_signal_inactive_without_a_threshold(self):
        # Existing two-signal deployments: overload_delay_s in the
        # sample is ignored unless the controller was given a threshold.
        controller = AutoscaleController(
            sustain_samples=1, backlog_depth=10**9, stall_delta_s=1e9,
        )
        assert not controller.observe(
            dict(pressure(), overload_delay_s=1e9)
        )
        assert not controller.fired

    def test_calm_delay_resets_the_streak(self):
        controller = AutoscaleController(
            sustain_samples=2, backlog_depth=10**9, stall_delta_s=1e9,
            overload_delay_s=0.05,
        )
        assert not controller.observe(dict(pressure(), overload_delay_s=0.1))
        assert not controller.observe(dict(pressure(), overload_delay_s=0.0))
        assert controller.streak == 0

    def test_report_names_the_threshold(self):
        controller = AutoscaleController(overload_delay_s=0.07)
        controller.observe(pressure())
        report = controller.report(fired=False)
        assert report["thresholds"]["overload_delay_s"] == 0.07
