"""Scale regression: the full acceptance run at real state sizes.

The forwarding-window protocol has two failure modes that only appear
once per-thread backlogs are deep enough for shipper threads to close
channels behind their own final cuts and for direct deltas to overtake
relays (see test_coordinator_units for the unit-level pins).  This runs
the headline experiment at the acceptance scale and checks the paper's
claim end to end: fluid's migration-window p99 is strictly below
all-at-once's at equal state size, and both strategies are oracle-clean.
"""

from repro.harness.experiments import run_elastic


def test_fluid_beats_all_at_once_at_scale():
    report = run_elastic(
        strategy="both",
        records_per_thread=20_000,
        seed=11,
    )
    rows = {row["strategy"]: row for row in report.rows}
    assert set(rows) == {"all-at-once", "fluid"}
    for row in rows.values():
        assert row["oracle_ok"] is True
        assert row["ownership_checks"] > 0
        assert row["moves_completed"] >= 1
        assert row["moved_bytes"] > 0
        assert row["window_p99_s"] > 0
    # The Megaphone effect: sub-moves amortise the stall.
    assert rows["fluid"]["window_p99_s"] < rows["all-at-once"]["window_p99_s"]
    assert any("Megaphone effect" in note for note in report.notes)
