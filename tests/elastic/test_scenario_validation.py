"""Rescale scenario validation: fail fast, name what *would* work.

Satellite coverage for the elastic configuration surface: a scenario
asking a non-elastic engine to rescale, naming an unknown migration
strategy, or scheduling the rescale past the workload horizon must fail
with a :class:`CapabilityError` / :class:`ConfigError` whose message
names the supported set (with a did-you-mean on typos) — never a
mid-simulation crash.
"""

import pytest

from repro.common.errors import CapabilityError, ConfigError, StateError
from repro.elastic.plan import ElasticPlan
from repro.runtime import REGISTRY, Scenario, run_scenario

BASE = dict(
    workload="ysb",
    nodes=2,
    threads=2,
    workload_overrides={"records_per_thread": 300},
    seed=3,
)


class TestCapabilityGate:
    def test_non_elastic_engine_names_the_capable_set(self):
        spec = Scenario(engine="flink", rescale_at=0.01, **BASE)
        with pytest.raises(CapabilityError) as exc:
            run_scenario(spec)
        message = str(exc.value)
        assert "flink" in message
        assert "slash" in message and "uppar" in message

    def test_unknown_strategy_gets_a_did_you_mean(self):
        spec = Scenario(
            engine="slash", rescale_at=0.01,
            migration_strategy="fluud", **BASE,
        )
        with pytest.raises(CapabilityError) as exc:
            run_scenario(spec)
        message = str(exc.value)
        assert "did you mean 'fluid'" in message
        assert "all-at-once" in message

    def test_attach_elastic_validates_the_plan(self):
        engine = REGISTRY.create("slash", 2)
        with pytest.raises(ConfigError, match="drain_node"):
            engine.attach_elastic(ElasticPlan(rescale_at=0.01, action="leave"))

    def test_static_scenario_never_consults_the_gate(self):
        # No rescale_at: flink runs fine — the gate is elastic-only.
        result = run_scenario(Scenario(engine="flink", **BASE))
        assert result.aggregates


class TestRescalePastHorizon:
    @pytest.mark.parametrize("engine", ["slash", "uppar"])
    def test_rescale_past_horizon_is_a_config_error(self, engine):
        spec = Scenario(
            engine=engine, rescale_at=1e9,
            rescale_overrides={"action": "rebalance"}, **BASE,
        )
        with pytest.raises(ConfigError, match="after the workload horizon"):
            run_scenario(spec)


class TestHarnessValidation:
    def test_rescale_frac_bounds(self):
        from repro.harness.experiments import run_elastic

        with pytest.raises(StateError, match="rescale_frac"):
            run_elastic(rescale_frac=1.5, records_per_thread=300)

    def test_unknown_engine_fails_before_any_run(self):
        from repro.harness.experiments import run_elastic

        with pytest.raises(ConfigError, match="slash"):
            run_elastic(system="slassh", records_per_thread=300)
