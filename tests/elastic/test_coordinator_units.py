"""Unit tests for the Slash migration coordinator's forwarding window.

These drive :class:`SlashElasticCoordinator`'s executor-facing hooks
directly against fakes, pinning the admission protocol that keeps the
per-helper epoch sequence dense across a handoff.  Two of the cases are
regressions for protocol bugs that only surfaced at scale:

* the reorder buffer must gate on *ledger denseness*, not on the
  coordinator's pending books — a direct delta can close a gap (and be
  pruned from ``pending``) while later epochs still sit parked; and
* a delta whose send path vanished (the shipper thread's producer was
  closed behind its own final cut, or re-pointing made the helper its
  own leader) must be carried to the new leader by the coordinator —
  dropping it is only correct on the crash-promotion path.
"""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError, StateError
from repro.elastic.migration import SlashElasticCoordinator, _PostState
from repro.elastic.plan import ElasticPlan, PartitionMove
from repro.state.epoch import EpochDelta
from repro.state.partition import PartitionDirectory


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.sanitize = None
        self.faults = None
        self.spawned = []

    def process(self, gen, name=""):
        self.spawned.append((name, gen))


class FakeLedger:
    def __init__(self, admitted=None):
        self._admitted = dict(admitted or {})

    def last_epoch(self, operator_id, partition, helper):
        return self._admitted.get((partition, helper), -1)


class FakeBackend:
    def __init__(self, ledger):
        self.ledger = ledger


class FakeExecutor:
    def __init__(self, executor_id, admitted=None):
        self.executor_id = executor_id
        self.backend = FakeBackend(FakeLedger(admitted))
        self._last_contribution = {}


class FakeCluster:
    config = ClusterConfig(nodes=2)


def delta(epoch, partition=0, helper=1, pairs=(((3, 42), 1.0),)):
    return EpochDelta(
        operator_id="op", partition=partition, from_executor=helper,
        epoch=epoch, pairs=tuple(pairs), nbytes=64, watermark=0.0,
    )


@pytest.fixture
def coord():
    sim = FakeSim()
    directory = PartitionDirectory(3, leaders=[2, 1, 2])  # p0 moved 0 -> 2
    coordinator = SlashElasticCoordinator(
        sim, FakeCluster(), directory, ElasticPlan(rescale_at=0.5), 4096
    )
    coordinator.executors = [FakeExecutor(i) for i in range(3)]
    coordinator.operator_id = "op"
    return coordinator


def open_window(coord, pending=None, partition=0, src=0, dst=2):
    post = _PostState(
        move=PartitionMove(partition=partition, src=src, dst=dst),
        pending={h: set(epochs) for h, epochs in (pending or {}).items()},
    )
    coord._post[partition] = post
    return post


class TestOnDelta:
    def test_untracked_partition_is_ignored(self, coord):
        assert coord.on_delta(coord.executors[2], delta(0, partition=1), ()) is False

    def test_old_leader_relays_with_identity(self, coord):
        post = open_window(coord, pending={1: {5}})
        consumed = coord.on_delta(coord.executors[0], delta(5), ())
        assert consumed is True
        assert post.relays_in_flight == 1
        assert any("relay" in name for name, _g in coord.sim.spawned)

    def test_bystander_is_not_a_relay_source(self, coord):
        open_window(coord)
        assert coord.on_delta(coord.executors[1], delta(5), ()) is False

    def test_dense_delta_merges_on_executor_path(self, coord):
        open_window(coord, pending={1: {3}})
        new_leader = coord.executors[2]
        new_leader.backend.ledger._admitted[(0, 1)] = 1
        assert coord.on_delta(new_leader, delta(2), ()) is False
        assert not coord.sim.spawned

    def test_skip_parks_while_pending_in_flight(self, coord):
        post = open_window(coord, pending={1: {2, 3}})
        new_leader = coord.executors[2]
        new_leader.backend.ledger._admitted[(0, 1)] = 1
        assert coord.on_delta(new_leader, delta(5), ()) is True
        assert [d.epoch for d, _t in post.buffers[1]] == [5]

    def test_regression_skip_parks_while_buffers_nonempty(self, coord):
        """Pending pruned to nothing must not close the reorder window.

        The bug: epoch 22 merged directly and the prune emptied
        ``pending`` while 23..35 still sat in ``buffers``; the next
        direct delta (36) then fell through to the ledger and raised
        an epoch-skip StateError.  Denseness, not pending, is the gate.
        """
        post = open_window(coord, pending={1: {2}})
        new_leader = coord.executors[2]
        new_leader.backend.ledger._admitted[(0, 1)] = 2  # prune point
        post.buffers[1] = [(delta(4), ())]
        assert coord.on_delta(new_leader, delta(6), ()) is True
        assert 1 not in post.pending  # opportunistically pruned
        assert [d.epoch for d, _t in post.buffers[1]] == [4, 6]

    def test_skip_parks_while_relays_in_flight(self, coord):
        post = open_window(coord)
        post.relays_in_flight = 1
        new_leader = coord.executors[2]
        assert coord.on_delta(new_leader, delta(4), ()) is True
        assert [d.epoch for d, _t in post.buffers[1]] == [4]

    def test_real_skip_falls_through_to_the_ledger(self, coord):
        """A gap with nothing in flight is a protocol bug, kept loud."""
        open_window(coord)
        new_leader = coord.executors[2]
        assert coord.on_delta(new_leader, delta(7), ()) is False

    def test_dense_delta_schedules_drain_of_parked_successors(self, coord):
        post = open_window(coord)
        post.buffers[1] = [(delta(2), ())]
        new_leader = coord.executors[2]
        new_leader.backend.ledger._admitted[(0, 1)] = 0
        assert coord.on_delta(new_leader, delta(1), ()) is False
        assert any("drain" in name for name, _g in coord.sim.spawned)


class TestOnShipBlocked:
    def test_untracked_partition_keeps_crash_promotion_drop(self, coord):
        helper = coord.executors[1]
        assert coord.on_ship_blocked(helper, delta(3, partition=1)) is False

    def test_regression_closed_producer_delta_is_carried(self, coord):
        """The two-shipper interleave: thread B closed the channel the
        re-pointed backlog needed; the coordinator must carry those
        epochs itself or the drain stalls forever."""
        post = open_window(coord, pending={1: {3}})
        helper = coord.executors[1]
        helper._last_contribution[3] = 0.25
        assert coord.on_ship_blocked(helper, delta(3)) is True
        assert post.relays_in_flight == 1
        assert any("forward" in name for name, _g in coord.sim.spawned)

    def test_new_leader_forwards_to_itself_without_wire_delay(self, coord):
        open_window(coord, pending={2: {3}})
        new_leader = coord.executors[2]
        coord.on_ship_blocked(new_leader, delta(3, helper=2))
        name, gen = coord.sim.spawned[-1]
        # delay == 0: the generator's first step must not be a Timeout
        # of the wire-transfer kind; it finishes the forward inline.
        assert "forward" in name


class TestChannelReset:
    def test_dead_peer_stops_the_forwarding_window_waiting(self, coord):
        post = open_window(coord, pending={1: {3, 4}})
        post.buffers[1] = [(delta(4), ())]
        coord.on_channel_reset(2, peer_id=1)
        assert not post.pending and not post.buffers


class TestPostRunAccounting:
    def test_missed_rescale_raises_config_error(self, coord):
        coord.missed_rescale = True
        with pytest.raises(ConfigError, match="after the .* horizon"):
            coord.check_complete()

    def test_undrained_window_raises_state_error(self, coord):
        open_window(coord, pending={1: {9}})
        with pytest.raises(StateError, match="undrained"):
            coord.check_complete()

    def test_drained_window_passes(self, coord):
        open_window(coord)
        coord.check_complete()

    def test_report_separates_completed_from_rolled_back(self, coord):
        coord.events = [
            {"rolled_back": False, "moved_bytes": 100},
            {"rolled_back": True},
        ]
        report = coord.report()
        assert report["moves_completed"] == 1
        assert report["moves_rolled_back"] == 1
        assert report["moved_bytes"] == 100
