"""Tests for the declarative rescale schedule (ElasticPlan)."""

import pickle

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigError
from repro.elastic.plan import (
    ACTIONS,
    DEFAULT_FLUID_RANGES,
    ElasticPlan,
    PartitionMove,
    subrange_of,
    transfer_seconds,
)


class TestValidation:
    def test_defaults_are_valid(self):
        ElasticPlan(rescale_at=0.5).validate()

    def test_unknown_action(self):
        with pytest.raises(ConfigError, match="unknown rescale action"):
            ElasticPlan(rescale_at=0.5, action="shuffle").validate()

    def test_missing_rescale_at(self):
        with pytest.raises(ConfigError, match="rescale_at"):
            ElasticPlan().validate()

    def test_autoscale_needs_no_rescale_at(self):
        ElasticPlan(autoscale=True).validate()

    def test_negative_rescale_at(self):
        with pytest.raises(ConfigError, match="non-negative"):
            ElasticPlan(rescale_at=-1.0).validate()

    def test_join_needs_nodes(self):
        with pytest.raises(ConfigError, match="add_nodes"):
            ElasticPlan(rescale_at=0.5, action="join", add_nodes=0).validate()

    def test_leave_needs_drain_node(self):
        with pytest.raises(ConfigError, match="drain_node"):
            ElasticPlan(rescale_at=0.5, action="leave").validate()

    def test_fluid_ranges_floor(self):
        with pytest.raises(ConfigError, match="fluid_ranges"):
            ElasticPlan(rescale_at=0.5, fluid_ranges=0).validate()

    def test_fluid_spread_floor(self):
        with pytest.raises(ConfigError, match="fluid_spread"):
            ElasticPlan(rescale_at=0.5, fluid_spread=-0.1).validate()

    def test_every_named_action_validates(self):
        for action in ACTIONS:
            plan = ElasticPlan(rescale_at=0.5, action=action, drain_node=0)
            plan.validate()


class TestPlainData:
    def test_spare_nodes_only_for_join(self):
        assert ElasticPlan(rescale_at=0.5, add_nodes=2).spare_nodes == 2
        leave = ElasticPlan(rescale_at=0.5, action="leave", drain_node=1)
        assert leave.spare_nodes == 0

    def test_params_round_trips(self):
        plan = ElasticPlan(
            rescale_at=0.25, strategy="all-at-once", action="leave",
            drain_node=3, fluid_ranges=4, fluid_spread=2.0,
        )
        rebuilt = ElasticPlan(**plan.params())
        assert rebuilt == plan

    def test_picklable(self):
        plan = ElasticPlan(rescale_at=0.25, autoscale=True)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_move_is_plain_data(self):
        move = PartitionMove(partition=2, src=0, dst=3)
        assert pickle.loads(pickle.dumps(move)) == move


class TestSubrangeOf:
    def test_in_range_and_deterministic(self):
        for key in range(200):
            first = subrange_of(key, DEFAULT_FLUID_RANGES)
            assert 0 <= first < DEFAULT_FLUID_RANGES
            assert subrange_of(key, DEFAULT_FLUID_RANGES) == first

    def test_spreads_over_ranges(self, rng):
        """Keys from one partition's residue class hit every sub-range.

        The sub-range picker uses high hash bits precisely so it stays
        independent of the low bits that choose the partition.
        """
        ranges = 8
        partitions = 4
        keys = rng.integers(0, 1_000_000, size=400)
        hit = {subrange_of(int(k) * partitions, ranges) for k in keys}
        assert hit == set(range(ranges))


class TestTransferSeconds:
    def test_monotone_in_bytes(self):
        config = ClusterConfig(nodes=2)
        small = transfer_seconds(config, 1_000, 4096)
        large = transfer_seconds(config, 1_000_000, 4096)
        assert 0 < small < large

    def test_chunking_charges_per_buffer_nic_time(self):
        config = ClusterConfig(nodes=2)
        one_chunk = transfer_seconds(config, 64 * 1024, 64 * 1024)
        many_chunks = transfer_seconds(config, 64 * 1024, 4 * 1024)
        assert many_chunks > one_chunk
        extra_chunks = 16 - 1
        assert many_chunks - one_chunk == pytest.approx(
            extra_chunks * config.node.nic.nic_processing_s
        )
