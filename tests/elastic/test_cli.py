"""Tests for the ``elastic`` CLI subcommand."""

import json

from repro.harness.cli import main


def test_quick_run_prints_the_latency_table(capsys):
    code = main([
        "elastic", "--quick", "--records", "1200", "--strategy", "both",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "migration-window latency" in out
    assert "all-at-once" in out and "fluid" in out
    assert "PASS" in out and "FAIL" not in out


def test_out_dir_gets_text_and_json(tmp_path, capsys):
    code = main([
        "elastic", "--quick", "--records", "1200",
        "--strategy", "all-at-once", "--out", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "elastic.txt").exists()
    rows = json.loads((tmp_path / "elastic.json").read_text())
    assert rows
    for row in rows:
        assert row["oracle_ok"] is True
        assert row["ownership_checks"] > 0
        assert row["strategy"] == "all-at-once"


def test_unknown_strategy_suggests_a_fix(capsys):
    assert main(["elastic", "--strategy", "fluda"]) == 1
    err = capsys.readouterr().err
    assert "ELASTIC FAILED" in err
    assert "fluid" in err


def test_non_elastic_engine_fails_with_the_capable_set(capsys):
    code = main([
        "elastic", "--system", "flink", "--quick", "--records", "600",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "ELASTIC FAILED" in err
    assert "slash" in err and "uppar" in err


def test_rescale_past_horizon_fails_cleanly(capsys):
    code = main([
        "elastic", "--quick", "--records", "600",
        "--strategy", "fluid", "--rescale-frac", "0.999999",
    ])
    # Either the run squeaks in before the horizon (exit 0) or the
    # coordinator reports the miss as a clean config failure (exit 1) —
    # never a traceback.
    captured = capsys.readouterr()
    if code == 1:
        assert "ELASTIC FAILED" in captured.err
    else:
        assert "migration-window latency" in captured.out


def test_chaos_cli_accepts_the_elastic_flag(capsys):
    code = main([
        "chaos", "--fault", "leader-crash", "--elastic", "fluid",
        "--records", "800", "--no-determinism-check",
        "--strategy", "epoch-buddy",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fluid rescale" in out
