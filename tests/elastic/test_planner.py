"""Tests for the deterministic migration planner."""

import pytest

from repro.common.errors import ConfigError
from repro.elastic.plan import ElasticPlan
from repro.elastic.planner import MigrationPlanner
from repro.state.partition import PartitionDirectory


def apply_moves(directory, moves):
    for move in moves:
        assert directory.leader_of_partition(move.partition) == move.src
        directory.reassign(move.partition, move.dst)


class TestJoin:
    def test_moves_land_on_joining_executors(self):
        directory = PartitionDirectory(6, leaders=[0, 1, 2, 3, 0, 1])
        planner = MigrationPlanner(directory)
        moves = planner.plan_join([4, 5])
        assert moves
        assert {move.dst for move in moves} == {4, 5}
        for move in moves:
            assert directory.leader_of_partition(move.partition) == move.src

    def test_largest_partitions_move_first(self):
        directory = PartitionDirectory(4, leaders=[0, 0, 0, 0])
        sizes = {0: 10, 1: 500, 2: 50, 3: 5}
        planner = MigrationPlanner(directory, size_of_partition=sizes.get)
        moves = planner.plan_join([3])
        moved = [move.partition for move in moves]
        assert moved == sorted(moved, key=lambda p: -sizes[p])
        assert moved[0] == 1

    def test_join_requires_joining_executors(self):
        planner = MigrationPlanner(PartitionDirectory(3))
        plan = ElasticPlan(rescale_at=0.5, action="join")
        with pytest.raises(ConfigError, match="no joining executors"):
            planner.plan_moves(plan, joining=())

    def test_deterministic(self):
        directory = PartitionDirectory(8, leaders=[0, 1, 2, 3, 0, 1, 2, 3])
        planner = MigrationPlanner(directory)
        assert planner.plan_join([6, 7]) == planner.plan_join([6, 7])


class TestLeave:
    def test_drains_every_led_partition(self):
        directory = PartitionDirectory(4, leaders=[0, 1, 1, 2])
        planner = MigrationPlanner(directory)
        moves = planner.plan_leave(1)
        assert sorted(move.partition for move in moves) == [1, 2]
        assert all(move.src == 1 for move in moves)
        assert all(move.dst != 1 for move in moves)

    def test_round_robins_over_survivors(self):
        directory = PartitionDirectory(6, leaders=[0, 0, 0, 0, 1, 2])
        planner = MigrationPlanner(directory)
        moves = planner.plan_leave(0)
        assert [move.dst for move in moves] == [1, 2, 1, 2]

    def test_sole_leader_cannot_leave(self):
        directory = PartitionDirectory(3, leaders=[0, 0, 0])
        planner = MigrationPlanner(directory)
        with pytest.raises(ConfigError, match="leads every partition"):
            planner.plan_leave(0)


class TestRebalance:
    def test_evens_out_a_skewed_map(self):
        directory = PartitionDirectory(6, leaders=[0, 0, 0, 0, 0, 5])
        planner = MigrationPlanner(directory)
        moves = planner.plan_rebalance()
        assert moves
        apply_moves(directory, moves)
        fair = -(-6 // 2)
        for executor in (0, 5):
            assert len(directory.partitions_led_by(executor)) <= fair

    def test_balanced_map_plans_nothing(self):
        directory = PartitionDirectory(4)
        planner = MigrationPlanner(directory)
        assert planner.plan_rebalance() == []


class TestPlanMoves:
    def test_dispatches_by_action(self):
        directory = PartitionDirectory(4, leaders=[0, 1, 2, 0])
        planner = MigrationPlanner(directory)
        join = ElasticPlan(rescale_at=0.5, action="join")
        leave = ElasticPlan(rescale_at=0.5, action="leave", drain_node=0)
        assert planner.plan_moves(join, joining=[3])
        assert planner.plan_moves(leave)

    def test_unknown_action_raises(self):
        planner = MigrationPlanner(PartitionDirectory(3))
        plan = ElasticPlan(rescale_at=0.5)
        plan.action = "bogus"
        with pytest.raises(ConfigError, match="unknown rescale action"):
            planner.plan_moves(plan)
