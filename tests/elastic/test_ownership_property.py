"""The ownership-exactness invariant: units plus a seeded property test.

The sanitizer's ``ownership-exactness`` invariant shadows live
migration: each key range owned by exactly one leader at all times, no
sub-range copied twice, no forwarded delta applied twice.  The unit
tests drive each ``note_``/``check_`` hook both ways; the property test
replays randomly planned (but legal) migration histories through the
planner and the sanitizer and checks that exactly-one-owner holds at
every step, while a random illegal mutation of the same history always
trips the invariant.
"""

import pytest

from repro.elastic.plan import ElasticPlan
from repro.elastic.planner import MigrationPlanner
from repro.sanitizer.invariants import InvariantViolation, Sanitizer
from repro.state.partition import PartitionDirectory


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.tracer = None


@pytest.fixture
def san():
    return Sanitizer(FakeSim())


def legal_handoff(san, partition, src, dst, ranges=4):
    for range_id in range(ranges):
        san.note_range_copy("op", partition, range_id, src, dst)
    san.note_ownership_handoff(
        "op", partition, src, dst, ranges_copied=ranges, ranges_total=ranges
    )


class TestOwnershipUnits:
    def test_legal_fluid_handoff_passes_and_counts(self, san):
        san.note_migration_owner("op", 0, 0)
        legal_handoff(san, 0, src=0, dst=2)
        san.check_delta_owner("op", 0, 2)
        assert san.checks["ownership-exactness"] == 7

    def test_all_at_once_handoff_needs_no_ranges(self, san):
        san.note_migration_owner("op", 1, 1)
        san.note_ownership_handoff(
            "op", 1, src=1, dst=0, ranges_copied=0, ranges_total=0
        )
        san.check_delta_owner("op", 1, 0)

    def test_double_range_copy_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        san.note_range_copy("op", 0, 3, 0, 1)
        with pytest.raises(InvariantViolation, match="copied twice") as exc:
            san.note_range_copy("op", 0, 3, 0, 1)
        assert exc.value.invariant == "ownership-exactness"

    def test_non_owner_copy_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        with pytest.raises(InvariantViolation, match="non-owner"):
            san.note_range_copy("op", 0, 0, src=2, dst=1)

    def test_non_owner_handoff_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        with pytest.raises(InvariantViolation, match="two leaders"):
            san.note_ownership_handoff(
                "op", 0, src=1, dst=2, ranges_copied=0, ranges_total=0
            )

    def test_partial_handoff_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        san.note_range_copy("op", 0, 0, 0, 1)
        with pytest.raises(InvariantViolation, match="partial handoff"):
            san.note_ownership_handoff(
                "op", 0, src=0, dst=1, ranges_copied=1, ranges_total=4
            )

    def test_handoff_with_uncopied_ranges_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        san.note_range_copy("op", 0, 0, 0, 1)
        san.note_range_copy("op", 0, 1, 0, 1)
        with pytest.raises(InvariantViolation, match="ever copied"):
            san.note_ownership_handoff(
                "op", 0, src=0, dst=1, ranges_copied=4, ranges_total=4
            )

    def test_stale_leader_merge_fails(self, san):
        san.note_migration_owner("op", 0, 0)
        legal_handoff(san, 0, src=0, dst=1)
        with pytest.raises(InvariantViolation, match="splitting"):
            san.check_delta_owner("op", 0, 0)

    def test_double_transfer_apply_fails(self, san):
        token = (0, 1, 7)  # (partition, helper, epoch)
        san.note_transfer_apply("op", token)
        with pytest.raises(InvariantViolation, match="applied twice"):
            san.note_transfer_apply("op", token)

    def test_scopes_are_independent(self, san):
        """The Slash and exchange planes never cross-contaminate."""
        san.note_migration_owner("op", 0, 0)
        san.note_migration_owner("exchange", 0, 3)
        san.note_transfer_apply("op", (0, 1, 7))
        san.note_transfer_apply("exchange", (0, 1, 7))
        san.check_delta_owner("op", 0, 0)
        san.check_delta_owner("exchange", 0, 3)


class TestOwnershipProperty:
    """Seeded-random migration histories, legal and mutated."""

    def _random_history(self, rng):
        """A planner-produced move list over a random leader map."""
        executors = int(rng.integers(3, 9))
        leaders = [int(rng.integers(0, executors)) for _ in range(executors)]
        # Keep at least two distinct leaders so leave/rebalance can plan.
        leaders[0], leaders[1] = 0, 1
        directory = PartitionDirectory(executors, leaders=leaders)
        planner = MigrationPlanner(directory)
        action = ["leave", "rebalance"][int(rng.integers(0, 2))]
        if action == "leave":
            moves = planner.plan_leave(0)
        else:
            moves = planner.plan_rebalance()
        return directory, moves

    def test_legal_histories_keep_exactly_one_owner(self, rng):
        for _ in range(25):
            directory, moves = self._random_history(rng)
            san = Sanitizer(FakeSim())
            owners = {}
            for partition in range(directory.executors):
                owner = directory.leader_of_partition(partition)
                san.note_migration_owner("op", partition, owner)
                owners[partition] = owner
            ranges = int(rng.integers(1, 6))
            for move in moves:
                legal_handoff(san, move.partition, move.src, move.dst, ranges)
                directory.reassign(move.partition, move.dst)
                owners[move.partition] = move.dst
                token = (move.partition, move.src, int(rng.integers(0, 100)))
                san.note_transfer_apply("op", token)
            # Exactly one owner per key range, and the sanitizer's shadow
            # agrees with the directory after every completed history.
            for partition in range(directory.executors):
                owner = directory.leader_of_partition(partition)
                assert owner == owners[partition]
                san.check_delta_owner("op", partition, owner)

    def test_mutated_histories_always_trip_the_invariant(self, rng):
        mutations = ("recopy", "partial", "wrong-owner", "double-apply")
        for index in range(25):
            directory, moves = self._random_history(rng)
            if not moves:
                continue
            san = Sanitizer(FakeSim())
            for partition in range(directory.executors):
                san.note_migration_owner(
                    "op", partition, directory.leader_of_partition(partition)
                )
            move = moves[int(rng.integers(0, len(moves)))]
            mutation = mutations[index % len(mutations)]
            with pytest.raises(InvariantViolation) as exc:
                if mutation == "recopy":
                    san.note_range_copy("op", move.partition, 0, move.src, move.dst)
                    san.note_range_copy("op", move.partition, 0, move.src, move.dst)
                elif mutation == "partial":
                    san.note_range_copy("op", move.partition, 0, move.src, move.dst)
                    san.note_ownership_handoff(
                        "op", move.partition, move.src, move.dst,
                        ranges_copied=1, ranges_total=2,
                    )
                elif mutation == "wrong-owner":
                    thief = (move.src + 1) % directory.executors
                    if thief == directory.leader_of_partition(move.partition):
                        thief = (thief + 1) % directory.executors
                    san.note_ownership_handoff(
                        "op", move.partition, thief, move.dst,
                        ranges_copied=0, ranges_total=0,
                    )
                else:
                    token = (move.partition, move.src, 1)
                    san.note_transfer_apply("op", token)
                    san.note_transfer_apply("op", token)
            assert exc.value.invariant == "ownership-exactness"
