"""Migration × leader-crash: the hardest cell of the chaos matrix.

A leader crash landing during (or around) a live rescale must leave
every move either fenced-rolled-back or completed — never partial
ownership — and the run must still reproduce the fail-free *static*
baseline exactly.  These tests drive the same differential cell the CI
chaos matrix generates (``--elastic`` on the chaos harness).
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.runtime import Scenario, run_scenario

RECORDS = 1000
SEED = 7
NODES = 3


def scenario(**kwargs):
    return Scenario(
        engine="slash",
        workload="ysb",
        nodes=NODES,
        threads=2,
        workload_overrides={"records_per_thread": RECORDS},
        seed=SEED,
        **kwargs,
    )


@pytest.fixture(scope="module")
def baseline():
    return run_scenario(scenario())


def crash_overrides(horizon):
    """The chaos harness's horizon-scaled fault tunables."""
    return dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )


@pytest.mark.parametrize("strategy", ["all-at-once", "fluid"])
def test_leader_crash_during_migration_never_splits_ownership(
    baseline, strategy
):
    horizon = baseline.sim_seconds
    plan = FaultPlan.preset("leader-crash", SEED, NODES, horizon)
    plan.validate(NODES, horizon_s=horizon)
    faulted = run_scenario(scenario(
        fault_plan=plan,
        fault_overrides=crash_overrides(horizon),
        rescale_at=horizon * 0.3,
        migration_strategy=strategy,
        rescale_overrides={"action": "join", "add_nodes": 1},
    ))
    # Zero lost results: chaos + migration still equals the untouched run.
    assert faulted.aggregates == baseline.aggregates
    # Every planned move ended in exactly one of the two legal states.
    info = faulted.extra["elastic"]
    for event in info["events"]:
        assert event["rolled_back"] in (True, False)
    assert info["moves_completed"] + info["moves_rolled_back"] == len(
        info["events"]
    )
    # The recovery plane saw no same-term double commit: the fenced
    # term bump keeps old-leader and new-leader commits apart.
    terms = faulted.extra["faults"].get("terms", {})
    assert not terms.get("split_brain", [])


def test_chaos_harness_runs_the_migration_cell():
    """The CI cell end to end: run_chaos(elastic=...) raises FaultError
    on any lost result, split brain, or non-determinism."""
    from repro.harness.experiments import run_chaos

    report = run_chaos(
        fault="leader-crash",
        seed=SEED,
        nodes=NODES,
        threads=2,
        records_per_thread=RECORDS,
        verify_determinism=True,
        system="slash",
        strategy="epoch-buddy",
        elastic="fluid",
    )
    assert "fluid rescale" in report.name
    assert report.rows
