"""The migration-correctness oracle: migrated runs equal static runs.

Differential battery over rescale action × migration strategy × engine:
every live-migrated run must reproduce the static run's (window, key)
aggregates byte-for-byte (:func:`diff_results`), with the sanitizer's
``ownership-exactness`` invariant live throughout.  The reactive
autoscale path and the exchange (UpPar) analogue are covered by the
same oracle.
"""

import pytest

from repro.common.errors import ConfigError
from repro.runtime import Scenario, run_scenario
from repro.runtime.oracle import diff_results

RECORDS = 1500
SEED = 11


def base(engine, nodes=2, threads=4):
    return dict(
        engine=engine,
        workload="ysb",
        nodes=nodes,
        threads=threads,
        workload_overrides={"records_per_thread": RECORDS},
        seed=SEED,
    )


@pytest.fixture(scope="module")
def static_slash():
    return run_scenario(Scenario(**base("slash")))


@pytest.fixture(scope="module")
def static_uppar():
    return run_scenario(Scenario(**base("uppar")))


def migrate(engine, static, strategy, action, **overrides):
    rescale_overrides = {"action": action, "add_nodes": 1, **overrides}
    if action == "leave":
        rescale_overrides.setdefault("drain_node", 1)
    return run_scenario(Scenario(
        rescale_at=static.sim_seconds * 0.35,
        migration_strategy=strategy,
        rescale_overrides=rescale_overrides,
        sanitize=True,
        **base(engine),
    ))


class TestSlashOracle:
    @pytest.mark.parametrize("strategy", ["all-at-once", "fluid"])
    @pytest.mark.parametrize("action", ["join", "leave", "rebalance"])
    def test_migrated_equals_static(self, static_slash, strategy, action):
        migrated = migrate("slash", static_slash, strategy, action)
        diff = diff_results(static_slash, migrated)
        assert diff.ok, diff.describe()
        info = migrated.extra["elastic"]
        assert info["strategy"] == strategy
        if action != "rebalance":  # identity map: rebalance may be a no-op
            assert info["moves_completed"] >= 1
            if strategy == "all-at-once":
                # Fluid's spread-out rounds can land the handoff after
                # the last window fired (store already drained) at this
                # scale; the bulk handoff always carries live state.
                assert info["moved_bytes"] > 0
        checks = migrated.extra["sanitizer_checks"]
        assert checks["ownership-exactness"] > 0

    def test_migration_window_is_observable(self, static_slash):
        """trigger_events timestamps window fires, so the harness can
        slice migration-window latency out of the steady state."""
        migrated = migrate("slash", static_slash, "fluid", "join")
        events = migrated.extra["trigger_events"]
        assert events
        started = migrated.extra["elastic"]["started_at_s"]
        assert any(t >= started for t, _lag in events)
        assert static_slash.extra["trigger_events"]


class TestExchangeOracle:
    @pytest.mark.parametrize("strategy", ["all-at-once", "fluid"])
    def test_uppar_join_equals_static(self, static_uppar, strategy):
        migrated = migrate("uppar", static_uppar, strategy, "join")
        diff = diff_results(static_uppar, migrated)
        assert diff.ok, diff.describe()
        info = migrated.extra["elastic"]
        assert info["rounds"] >= 1
        assert migrated.extra["sanitizer_checks"]["ownership-exactness"] > 0

    def test_uppar_leave_equals_static(self, static_uppar):
        migrated = migrate("uppar", static_uppar, "fluid", "leave")
        diff = diff_results(static_uppar, migrated)
        assert diff.ok, diff.describe()

    def test_uppar_rejects_autoscale(self, static_uppar):
        with pytest.raises(ConfigError, match="autoscale"):
            migrate("uppar", static_uppar, "fluid", "join", autoscale=True)


class TestAutoscale:
    def test_reactive_trigger_migrates_and_matches(self, static_slash):
        """Zero thresholds: the controller fires on the first samples and
        the resulting migration still satisfies the oracle."""
        migrated = migrate(
            "slash", static_slash, "fluid", "join",
            autoscale=True,
            autoscale_overrides={
                "stall_delta_s": 0.0,
                "sustain_samples": 1,
                "interval_s": static_slash.sim_seconds * 0.2,
            },
        )
        diff = diff_results(static_slash, migrated)
        assert diff.ok, diff.describe()
        info = migrated.extra["elastic"]
        assert info["autoscale"]["fired"] is True
        assert info["moves_completed"] >= 1

    def test_calm_run_never_fires(self, static_slash):
        """Unreachable thresholds: the watch expires without a rescale
        and the run is simply the static one plus a spare node."""
        migrated = migrate(
            "slash", static_slash, "fluid", "join",
            autoscale=True,
            autoscale_overrides={
                "stall_delta_s": 1e9,
                "backlog_depth": 10**9,
                "interval_s": static_slash.sim_seconds * 0.2,
            },
        )
        diff = diff_results(static_slash, migrated)
        assert diff.ok, diff.describe()
        info = migrated.extra["elastic"]
        assert info["autoscale"]["fired"] is False
        assert info["moves_completed"] == 0
