"""Unit tests for the hardware configuration dataclasses."""

import pytest

from repro.common.config import (
    ClusterConfig,
    CpuConfig,
    NicConfig,
    NodeConfig,
    paper_cluster,
    DEFAULT_CREDITS,
    DEFAULT_BUFFER_BYTES,
)
from repro.common.errors import ConfigError


def test_paper_cluster_defaults():
    cluster = paper_cluster()
    assert cluster.nodes == 16
    assert cluster.node.cpu.cores == 10
    assert cluster.node.cpu.frequency_hz == pytest.approx(2.4e9)
    assert cluster.node.nic.bandwidth_bytes_per_s == pytest.approx(11.8e9)


def test_paper_cluster_sized():
    assert paper_cluster(4).nodes == 4


def test_with_nodes_returns_copy():
    base = paper_cluster(16)
    scaled = base.with_nodes(2)
    assert scaled.nodes == 2
    assert base.nodes == 16
    assert scaled.node == base.node


def test_cpu_cycle_conversions_roundtrip():
    cpu = CpuConfig()
    assert cpu.cycles(cpu.seconds(240)) == pytest.approx(240)


def test_cpu_rejects_zero_cores():
    with pytest.raises(ConfigError):
        CpuConfig(cores=0)


def test_cpu_rejects_inverted_cache_sizes():
    with pytest.raises(ConfigError):
        CpuConfig(l1d_bytes=10 ** 9, l2_bytes=10 ** 6, llc_bytes=10 ** 7)


def test_nic_wire_time():
    nic = NicConfig()
    assert nic.wire_time(11.8e9) == pytest.approx(1.0)


def test_nic_rejects_achievable_above_wire():
    with pytest.raises(ConfigError):
        NicConfig(bandwidth_bytes_per_s=20e9)


def test_node_rejects_nonpositive_dram():
    with pytest.raises(ConfigError):
        NodeConfig(dram_bytes=0)


def test_cluster_rejects_zero_nodes():
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=0)


def test_defaults_match_paper():
    assert DEFAULT_CREDITS == 8
    assert DEFAULT_BUFFER_BYTES == 64 * 1024
