"""Unit and property tests for the deterministic RNG tree."""

import numpy as np
from hypothesis import given, strategies as st

from repro.common.rng import RngTree


def test_same_path_same_stream():
    tree = RngTree(42)
    a = tree.generator("ysb", "node0").integers(0, 1 << 30, size=100)
    b = tree.generator("ysb", "node0").integers(0, 1 << 30, size=100)
    assert np.array_equal(a, b)


def test_different_paths_differ():
    tree = RngTree(42)
    a = tree.generator("ysb", "node0").integers(0, 1 << 30, size=100)
    b = tree.generator("ysb", "node1").integers(0, 1 << 30, size=100)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngTree(1).generator("x").integers(0, 1 << 30, size=100)
    b = RngTree(2).generator("x").integers(0, 1 << 30, size=100)
    assert not np.array_equal(a, b)


def test_child_path_equivalence():
    tree = RngTree(7)
    direct = tree.generator("a", "b", "c").random(10)
    via_child = tree.child("a").child("b", "c").generator().random(10)
    assert np.array_equal(direct, via_child)


def test_order_independence():
    """Drawing from one stream must not perturb a sibling stream."""
    tree = RngTree(9)
    baseline = tree.generator("right").random(5)
    tree2 = RngTree(9)
    tree2.generator("left").random(1000)  # interleaved draw
    assert np.array_equal(tree2.generator("right").random(5), baseline)


def test_seed_type_checked():
    import pytest

    with pytest.raises(TypeError):
        RngTree("not-an-int")  # type: ignore[arg-type]


def test_repr_mentions_path():
    assert "a/b" in repr(RngTree(3).child("a", "b"))


@given(st.integers(min_value=0, max_value=2 ** 62), st.text(min_size=1, max_size=8))
def test_property_reproducible_any_seed_and_name(seed, name):
    t1 = RngTree(seed).generator(name).random(4)
    t2 = RngTree(seed).generator(name).random(4)
    assert np.array_equal(t1, t2)
