"""Unit tests for repro.common.units."""

import pytest

from repro.common import units


def test_binary_sizes():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3


def test_decimal_sizes():
    assert units.KB == 1000
    assert units.MB == 10 ** 6
    assert units.GB == 10 ** 9


def test_gbit_per_s_100g_link():
    assert units.gbit_per_s(100) == pytest.approx(12.5e9)


def test_gbit_per_s_zero():
    assert units.gbit_per_s(0) == 0.0


def test_fmt_bytes_small():
    assert units.fmt_bytes(512) == "512.0 B"


def test_fmt_bytes_kib():
    assert units.fmt_bytes(64 * units.KIB) == "64.0 KiB"


def test_fmt_bytes_gib():
    assert units.fmt_bytes(2 * units.GIB) == "2.0 GiB"


def test_fmt_rate_gb():
    assert units.fmt_rate(11.8e9) == "11.80 GB/s"


def test_fmt_rate_records():
    assert units.fmt_rate_records(2.0e9) == "2.00 G rec/s"
    assert units.fmt_rate_records(1500) == "1.50 K rec/s"


def test_fmt_time_scales():
    assert units.fmt_time(0) == "0 s"
    assert units.fmt_time(1.5) == "1.500 s"
    assert units.fmt_time(2e-3) == "2.0 ms"
    assert units.fmt_time(82e-6) == "82.0 us"
    assert units.fmt_time(600e-9) == "600.0 ns"
