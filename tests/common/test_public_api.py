"""The top-level package exposes a stable public API."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_error_hierarchy():
    for error in (
        repro.ConfigError,
        repro.SimulationError,
        repro.ProtocolError,
        repro.StateError,
        repro.QueryError,
    ):
        assert issubclass(error, repro.ReproError)
        assert issubclass(error, Exception)


def test_minimal_quickstart_through_top_level_api():
    """The README's four-line quickstart must work verbatim."""
    from repro import SlashEngine
    from repro.workloads import YsbWorkload

    workload = YsbWorkload(records_per_thread=400, key_range=40, batch_records=100)
    engine = SlashEngine(epoch_bytes=32 * 1024)
    result = engine.run(workload.build_query(), workload.flows(2, 2))
    assert result.throughput_records_per_s > 0
    assert result.aggregates


def test_query_builder_through_top_level_api():
    import numpy as np

    from repro import Query, Schema, TumblingWindow

    schema = Schema("s", (("ts", "i8"), ("key", "i8")), record_bytes=16)
    query = Query("api-test")
    query.stream("s", schema).aggregate(TumblingWindow(1000), agg="count")
    query.validate()
    batch = schema.batch_from_columns(
        ts=np.array([1, 2], dtype=np.int64), key=np.array([5, 5], dtype=np.int64)
    )
    assert len(batch) == 2


def test_paper_cluster_accessible():
    cluster = repro.paper_cluster(4)
    assert cluster.nodes == 4
