"""Tests for the window/session join probe functions."""

from hypothesis import given, strategies as st

from repro.core.join import probe_sessions, probe_window
from repro.core.pipeline import LEFT, RIGHT
from repro.core.windows import SessionWindows


class TestProbeWindow:
    def test_cartesian_per_key(self):
        payload = [(LEFT, ("l1",)), (RIGHT, ("r1",)), (LEFT, ("l2",)), (RIGHT, ("r2",))]
        pairs = probe_window(payload)
        assert len(pairs) == 4
        assert (("l1",), ("r1",)) in pairs

    def test_no_match_sides(self):
        assert probe_window([(LEFT, ("l",))]) == []
        assert probe_window([(RIGHT, ("r",))]) == []
        assert probe_window([]) == []

    def test_output_sorted(self):
        payload = [(LEFT, ("b",)), (LEFT, ("a",)), (RIGHT, ("r",))]
        pairs = probe_window(payload)
        assert pairs == sorted(pairs)

    @given(st.integers(0, 5), st.integers(0, 5))
    def test_property_output_size(self, lefts, rights):
        payload = [(LEFT, (f"l{i}",)) for i in range(lefts)]
        payload += [(RIGHT, (f"r{i}",)) for i in range(rights)]
        assert len(probe_window(payload)) == lefts * rights


class TestProbeSessions:
    def test_closed_session_emitted(self):
        window = SessionWindows(10)
        payload = [(0.0, LEFT, ("l",)), (5.0, RIGHT, ("r",))]
        emitted, remaining = probe_sessions(window, payload, frontier=15.0)
        assert emitted == [(("l",), ("r",))]
        assert remaining == []

    def test_open_session_retained(self):
        window = SessionWindows(10)
        payload = [(0.0, LEFT, ("l",)), (5.0, RIGHT, ("r",))]
        emitted, remaining = probe_sessions(window, payload, frontier=14.9)
        assert emitted == []
        assert len(remaining) == 2

    def test_mixed_sessions(self):
        window = SessionWindows(10)
        payload = [
            (0.0, LEFT, ("l1",)),
            (5.0, RIGHT, ("r1",)),
            (100.0, LEFT, ("l2",)),
            (105.0, RIGHT, ("r2",)),
        ]
        emitted, remaining = probe_sessions(window, payload, frontier=50.0)
        assert emitted == [(("l1",), ("r1",))]
        assert sorted(entry[0] for entry in remaining) == [100.0, 105.0]

    def test_empty_payload(self):
        assert probe_sessions(SessionWindows(10), [], 100.0) == ([], [])

    def test_infinite_frontier_drains_everything(self):
        window = SessionWindows(10)
        payload = [(float(t), LEFT if t % 2 else RIGHT, (t,)) for t in range(5)]
        emitted, remaining = probe_sessions(window, payload, float("inf"))
        assert remaining == []
        assert len(emitted) == 2 * 3  # 2 lefts x 3 rights in one session
