"""Unit tests for SlashExecutor internals: watermarks, chunking, wiring."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import QueryError
from repro.core.engine import SlashEngine
from repro.core.executor import (
    CHUNK_HEADER_BYTES,
    DeltaChunk,
    DoneToken,
    FlowWatermarks,
    SlashExecutor,
)
from repro.core.pipeline import compile_query
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator
from repro.state.crdt import AppendLogCrdt, SumCrdt
from repro.state.epoch import EpochDelta
from repro.state.partition import PartitionDirectory
from repro.workloads.ysb import YsbWorkload


class TestFlowWatermarks:
    def test_single_flow_single_stream(self):
        wm = FlowWatermarks(1, ["s"])
        assert wm.watermark == float("-inf")
        wm.observe(0, "s", 10)
        assert wm.watermark == 10

    def test_min_over_streams(self):
        wm = FlowWatermarks(1, ["a", "b"])
        wm.observe(0, "a", 100)
        assert wm.watermark == float("-inf")  # stream b unseen
        wm.observe(0, "b", 40)
        assert wm.watermark == 40

    def test_min_over_flows(self):
        wm = FlowWatermarks(2, ["s"])
        wm.observe(0, "s", 100)
        wm.observe(1, "s", 60)
        assert wm.watermark == 60

    def test_finished_flows_drop_out(self):
        wm = FlowWatermarks(2, ["s"])
        wm.observe(0, "s", 100)
        wm.observe(1, "s", 60)
        wm.finish(1)
        assert wm.watermark == 100
        wm.finish(0)
        assert wm.watermark == float("inf")

    def test_never_regresses(self):
        wm = FlowWatermarks(1, ["s"])
        wm.observe(0, "s", 100)
        wm.observe(0, "s", 50)
        assert wm.watermark == 100


def make_executor(nodes=2, flows_count=2, crdt=None):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=nodes))
    cm = ConnectionManager(cluster)
    directory = PartitionDirectory(nodes)
    workload = YsbWorkload(records_per_thread=400, key_range=50, batch_records=100)
    plan = compile_query(workload.build_query())
    flows = [workload.flows(nodes, flows_count)[(0, t)] for t in range(flows_count)]
    executor = SlashExecutor(
        cluster, cm, directory, cluster.node(0), 0, plan, flows,
        buffer_bytes=8192, epoch_bytes=16 * 1024,
    )
    return sim, cluster, executor


class TestChunking:
    def test_small_delta_is_one_chunk(self):
        _sim, _cluster, executor = make_executor()
        delta = EpochDelta("ysb.agg", 1, 0, 0, ((("k"), 1.0),), 48, 5.0)
        chunks = list(executor._chunk_delta(delta))
        assert len(chunks) == 1
        assert chunks[0].last

    def test_many_pairs_split_into_chunks(self):
        _sim, _cluster, executor = make_executor()
        pairs = tuple(((0, k), float(k)) for k in range(2000))
        delta = EpochDelta("ysb.agg", 1, 0, 3, pairs, 2000 * 32, 7.0)
        chunks = list(executor._chunk_delta(delta))
        assert len(chunks) > 1
        assert sum(len(c.pairs) for c in chunks) == 2000
        assert [c.last for c in chunks] == [False] * (len(chunks) - 1) + [True]
        # Every chunk fits the channel buffer.
        for chunk in chunks:
            assert chunk.nbytes <= executor.buffer_bytes - 512
            assert chunk.epoch == 3
            assert chunk.partition == 1

    def test_oversized_append_payload_is_split(self):
        """One key whose record list exceeds a buffer must be split into
        mergeable sub-partials."""
        crdt = AppendLogCrdt(record_bytes=100)
        pairs = [("hot", list(range(500)))]  # ~50 KB >> 8 KiB buffer
        split = list(SlashExecutor._split_oversized(pairs, crdt, capacity=4096))
        assert len(split) > 1
        reassembled = []
        for key, payload in split:
            assert key == "hot"
            assert 8 + crdt.value_bytes(payload) <= 4096
            reassembled.extend(payload)
        assert reassembled == list(range(500))

    def test_scalar_pairs_never_split(self):
        crdt = SumCrdt()
        pairs = [("a", 1.0), ("b", 2.0)]
        assert list(SlashExecutor._split_oversized(pairs, crdt, 4096)) == pairs


class TestWiring:
    def test_connect_creates_channel_per_ordered_pair(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(nodes=3))
        cm = ConnectionManager(cluster)
        directory = PartitionDirectory(3)
        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        plan = compile_query(workload.build_query())
        flows = workload.flows(3, 1)
        executors = [
            SlashExecutor(
                cluster, cm, directory, cluster.node(i), i, plan,
                [flows[(i, 0)]],
            )
            for i in range(3)
        ]
        for executor in executors:
            executor.connect(executors)
        # n * (n-1) ordered pairs -> the paper's n^2 channels overall.
        assert cm.connection_count == 3 * 2
        for executor in executors:
            assert len(executor._out_channels) == 2
            assert len(executor._in_channels) == 2

    def test_too_many_flows_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(nodes=1))
        cm = ConnectionManager(cluster)
        directory = PartitionDirectory(1)
        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        plan = compile_query(workload.build_query())
        flow = workload.flows(1, 1)[(0, 0)]
        with pytest.raises(QueryError, match="exceed"):
            SlashExecutor(
                cluster, cm, directory, cluster.node(0), 0, plan, [flow] * 11
            )


class TestEngineValidation:
    def test_sparse_thread_ids_rejected(self):
        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        flows = workload.flows(1, 2)
        flows[(0, 5)] = flows.pop((0, 1))
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="dense"):
            SlashEngine().run(workload.build_query(), flows)

    def test_empty_flows_rejected(self):
        from repro.common.errors import ConfigError

        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        with pytest.raises(ConfigError, match="no flows"):
            SlashEngine().run(workload.build_query(), {})

    def test_flows_beyond_cluster_rejected(self):
        from repro.common.config import paper_cluster
        from repro.common.errors import ConfigError

        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        flows = workload.flows(4, 1)
        engine = SlashEngine(cluster_config=paper_cluster(2))
        with pytest.raises(ConfigError, match="cluster"):
            engine.run(workload.build_query(), flows)


class TestTokens:
    def test_done_token_and_chunk_are_distinct_payload_types(self):
        token = DoneToken(3)
        chunk = DeltaChunk("op", 0, 1, 2, (), CHUNK_HEADER_BYTES, 1.0, True)
        assert token.from_executor == 3
        assert chunk.last and chunk.epoch == 2
        assert not isinstance(token, DeltaChunk)
