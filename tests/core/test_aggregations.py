"""Tests for the vectorised partial-aggregation kernels.

The key property: every vectorised kernel must agree exactly with the
scalar reference fold, for any batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import QueryError
from repro.core.aggregations import (
    group_reduce,
    group_rows,
    partial_aggregate,
    sequential_aggregate,
)
from repro.state.crdt import crdt_by_name

batches = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 4), min_size=n, max_size=n),   # windows
        st.lists(st.integers(0, 6), min_size=n, max_size=n),   # keys
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=n, max_size=n
        ),
    )
)


def arrays(data):
    wins, keys, values = data
    return (
        np.array(wins, dtype=np.int64),
        np.array(keys, dtype=np.int64),
        np.array(values, dtype=np.float64),
    )


class TestPartialAggregate:
    def test_count(self):
        wins = np.array([0, 0, 0, 1])
        keys = np.array([7, 7, 8, 7])
        partials = partial_aggregate(crdt_by_name("count"), wins, keys, None)
        assert partials == {(0, 7): 2, (0, 8): 1, (1, 7): 1}

    def test_sum(self):
        wins = np.array([0, 0])
        keys = np.array([1, 1])
        values = np.array([2.5, 3.5])
        partials = partial_aggregate(crdt_by_name("sum"), wins, keys, values)
        assert partials == {(0, 1): 6.0}

    def test_min_max(self):
        wins = np.zeros(3, dtype=np.int64)
        keys = np.zeros(3, dtype=np.int64)
        values = np.array([3.0, 1.0, 2.0])
        assert partial_aggregate(crdt_by_name("min"), wins, keys, values) == {(0, 0): 1.0}
        assert partial_aggregate(crdt_by_name("max"), wins, keys, values) == {(0, 0): 3.0}

    def test_avg_pairs(self):
        wins = np.zeros(4, dtype=np.int64)
        keys = np.array([1, 1, 2, 2])
        values = np.array([1.0, 3.0, 10.0, 20.0])
        partials = partial_aggregate(crdt_by_name("avg"), wins, keys, values)
        assert partials == {(0, 1): (4.0, 2), (0, 2): (30.0, 2)}

    def test_empty_batch(self):
        empty = np.empty(0, dtype=np.int64)
        assert partial_aggregate(crdt_by_name("count"), empty, empty, None) == {}

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(QueryError):
            partial_aggregate(
                crdt_by_name("count"), np.zeros(2, np.int64), np.zeros(3, np.int64), None
            )

    def test_value_required_for_sum(self):
        wins = np.zeros(1, dtype=np.int64)
        with pytest.raises(QueryError, match="value column"):
            partial_aggregate(crdt_by_name("sum"), wins, wins, None)

    def test_append_has_no_kernel(self):
        wins = np.zeros(1, dtype=np.int64)
        with pytest.raises(QueryError, match="kernel"):
            partial_aggregate(crdt_by_name("append"), wins, wins, None)

    def test_results_are_plain_python(self):
        wins = np.zeros(1, dtype=np.int64)
        keys = np.zeros(1, dtype=np.int64)
        partials = partial_aggregate(crdt_by_name("count"), wins, keys, None)
        ((win, key), count) = next(iter(partials.items()))
        assert type(win) is int and type(key) is int
        assert isinstance(count, int)

    @pytest.mark.parametrize("agg", ["count", "sum", "min", "max", "avg"])
    @settings(max_examples=40, deadline=None)
    @given(data=batches)
    def test_property_matches_scalar_reference(self, agg, data):
        wins, keys, values = arrays(data)
        crdt = crdt_by_name(agg)
        vec = partial_aggregate(crdt, wins, keys, None if agg == "count" else values)
        ref = sequential_aggregate(crdt, wins, keys, None if agg == "count" else values)
        assert set(vec) == set(ref)
        for group in ref:
            assert vec[group] == pytest.approx(ref[group])


class TestGroupRows:
    def test_groups_and_order(self):
        wins = np.array([0, 1, 0, 1])
        keys = np.array([5, 5, 5, 6])
        groups = group_rows(wins, keys)
        assert set(groups) == {(0, 5), (1, 5), (1, 6)}
        assert list(groups[(0, 5)]) == [0, 2]
        assert list(groups[(1, 6)]) == [3]

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert group_rows(empty, empty) == {}

    @settings(max_examples=30, deadline=None)
    @given(data=batches)
    def test_property_groups_partition_rows(self, data):
        wins, keys, _values = arrays(data)
        groups = group_rows(wins, keys)
        all_rows = sorted(i for idx in groups.values() for i in idx)
        assert all_rows == list(range(len(wins)))
        for (win, key), indices in groups.items():
            assert all(wins[i] == win and keys[i] == key for i in indices)


class TestGroupReduce:
    """The array form must carry exactly the dict kernel's groups."""

    @pytest.mark.parametrize("agg", ["count", "sum", "min", "max"])
    @settings(max_examples=40, deadline=None)
    @given(data=batches)
    def test_columns_match_partial_aggregate(self, agg, data):
        wins, keys, values = arrays(data)
        crdt = crdt_by_name(agg)
        vals = None if agg == "count" else values
        reduced = group_reduce(crdt, wins, keys, vals)
        assert reduced is not None
        group_windows, group_keys, partials = reduced
        rebuilt = dict(
            zip(
                zip(group_windows.tolist(), group_keys.tolist()),
                partials.tolist(),
            )
        )
        assert rebuilt == partial_aggregate(crdt, wins, keys, vals)

    def test_avg_and_append_take_the_dict_path(self):
        wins = np.zeros(2, dtype=np.int64)
        values = np.ones(2, dtype=np.float64)
        assert group_reduce(crdt_by_name("avg"), wins, wins, values) is None
        assert group_reduce(crdt_by_name("append"), wins, wins, None) is None

    def test_empty_batch_yields_empty_columns(self):
        empty = np.empty(0, dtype=np.int64)
        group_windows, group_keys, partials = group_reduce(
            crdt_by_name("count"), empty, empty, None
        )
        assert len(group_windows) == len(group_keys) == len(partials) == 0
