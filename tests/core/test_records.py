"""Tests for schemas and record batches."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.core.records import RecordBatch, Schema, concat_batches

SCHEMA = Schema("s", (("ts", "i8"), ("key", "i8"), ("v", "f8")), record_bytes=24)


def make_batch(n=5):
    return SCHEMA.batch_from_columns(
        ts=np.arange(n, dtype=np.int64),
        key=np.arange(n, dtype=np.int64) % 3,
        v=np.linspace(0, 1, n),
    )


class TestSchema:
    def test_requires_ts_and_key(self):
        with pytest.raises(QueryError, match="ts"):
            Schema("x", (("key", "i8"),), 8)
        with pytest.raises(QueryError, match="key"):
            Schema("x", (("ts", "i8"),), 8)

    def test_rejects_duplicate_fields(self):
        with pytest.raises(QueryError, match="duplicate"):
            Schema("x", (("ts", "i8"), ("key", "i8"), ("ts", "f8")), 8)

    def test_rejects_bad_record_bytes(self):
        with pytest.raises(QueryError):
            Schema("x", (("ts", "i8"), ("key", "i8")), 0)

    def test_dtype_and_names(self):
        assert SCHEMA.field_names == ("ts", "key", "v")
        assert SCHEMA.dtype.names == ("ts", "key", "v")

    def test_empty_batch(self):
        assert len(SCHEMA.empty_batch()) == 0

    def test_batch_from_columns_missing(self):
        with pytest.raises(QueryError, match="missing"):
            SCHEMA.batch_from_columns(ts=np.array([1]), key=np.array([2]))

    def test_batch_from_columns_ragged(self):
        with pytest.raises(QueryError, match="ragged"):
            SCHEMA.batch_from_columns(
                ts=np.array([1]), key=np.array([2]), v=np.array([1.0, 2.0])
            )


class TestRecordBatch:
    def test_len_and_columns(self):
        batch = make_batch(5)
        assert len(batch) == 5
        assert list(batch.keys) == [0, 1, 2, 0, 1]
        assert list(batch.timestamps) == [0, 1, 2, 3, 4]

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            make_batch().col("nope")

    def test_wire_bytes(self):
        assert make_batch(5).wire_bytes == 5 * 24

    def test_max_timestamp(self):
        assert make_batch(5).max_timestamp == 4
        assert SCHEMA.empty_batch().max_timestamp == float("-inf")

    def test_select_mask(self):
        batch = make_batch(5)
        selected = batch.select(batch.keys == 0)
        assert len(selected) == 2
        assert list(selected.timestamps) == [0, 3]

    def test_take_indices(self):
        batch = make_batch(5)
        taken = batch.take(np.array([4, 0]))
        assert list(taken.timestamps) == [4, 0]

    def test_dtype_mismatch_rejected(self):
        other = np.zeros(3, dtype=[("ts", "i8"), ("key", "i8")])
        with pytest.raises(QueryError):
            RecordBatch(SCHEMA, other)

    def test_rows_iteration(self):
        rows = list(make_batch(2).rows())
        assert rows[0][:2] == (0, 0)


def test_concat_batches():
    merged = concat_batches(SCHEMA, [make_batch(2), make_batch(3)])
    assert len(merged) == 5
    assert len(concat_batches(SCHEMA, [])) == 0
    assert len(concat_batches(SCHEMA, [SCHEMA.empty_batch()])) == 0
