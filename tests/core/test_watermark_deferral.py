"""Unit tests for the watermark-deferral rule on sibling deltas.

With a non-identity partition directory, one helper ships several
deltas per epoch to the same leader over one FIFO channel; only the
last may carry the real watermark (see SlashExecutor._defer_watermarks).
"""

import math

from repro.common.config import ClusterConfig
from repro.core.executor import SlashExecutor
from repro.core.pipeline import compile_query
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator
from repro.state.epoch import EpochDelta
from repro.state.partition import PartitionDirectory
from repro.workloads.ysb import YsbWorkload


def make_executor(leaders):
    sim = Simulator()
    n = len(leaders)
    cluster = Cluster(sim, ClusterConfig(nodes=n))
    cm = ConnectionManager(cluster)
    directory = PartitionDirectory(n, leaders=leaders)
    workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
    plan = compile_query(workload.build_query())
    flows = [workload.flows(n, 1)[(0, 0)]]
    return SlashExecutor(
        cluster, cm, directory, cluster.node(0), 0, plan, flows
    )


def delta(partition, watermark=55.0, epoch=0):
    return EpochDelta("ysb.agg", partition, 3, epoch, (), 32, watermark)


def test_identity_leadership_keeps_all_watermarks():
    executor = make_executor(leaders=[0, 1, 2])
    deltas = [delta(1), delta(2)]
    deferred = executor._defer_watermarks(deltas)
    assert [d.watermark for d in deferred] == [55.0, 55.0]


def test_shared_leader_defers_all_but_last():
    executor = make_executor(leaders=[1, 1, 1])
    deltas = [delta(0), delta(1), delta(2)]
    deferred = executor._defer_watermarks(deltas)
    assert [d.watermark for d in deferred] == [float("-inf"), float("-inf"), 55.0]


def test_mixed_leadership():
    executor = make_executor(leaders=[0, 1, 1, 3])
    deltas = [delta(1), delta(2), delta(3)]
    deferred = executor._defer_watermarks(deltas)
    # Partitions 1 and 2 share leader 1: only the later one keeps it.
    assert deferred[0].watermark == float("-inf")
    assert deferred[1].watermark == 55.0
    assert deferred[2].watermark == 55.0


def test_payload_pairs_unchanged_by_deferral():
    executor = make_executor(leaders=[1, 1, 1])
    original = [delta(0), delta(1)]
    deferred = executor._defer_watermarks(original)
    for before, after in zip(original, deferred):
        assert after.pairs == before.pairs
        assert after.partition == before.partition
        assert after.epoch == before.epoch


def test_empty_batch():
    executor = make_executor(leaders=[0, 1])
    assert executor._defer_watermarks([]) == []
