"""Tests for the engine cost surfaces and working-set quantisation."""

import math

import pytest

from repro.baselines.costs import FLINK_COSTS, FLINK_RUNTIME_FACTOR, UPPAR_COSTS
from repro.core.costs import (
    DEFAULT_SLASH_COSTS,
    INTERPRETED_FACTOR,
    interpreted,
    quantize_working_set,
)


class TestQuantizeWorkingSet:
    def test_floor(self):
        assert quantize_working_set(0) == 4096.0
        assert quantize_working_set(100) == 4096.0

    def test_monotone(self):
        values = [quantize_working_set(x) for x in (5e3, 5e4, 5e5, 5e6, 5e7)]
        assert values == sorted(values)

    def test_never_underestimates(self):
        for x in (4097, 10_000, 123_456, 9_999_999):
            assert quantize_working_set(x) >= x

    def test_quantisation_is_coarse(self):
        """Nearby sizes map to the same bucket (memoisation works)."""
        assert quantize_working_set(1_000_000) == quantize_working_set(1_000_001)

    def test_bounded_overestimate(self):
        for x in (10_000, 1_000_000, 50_000_000):
            assert quantize_working_set(x) <= x * 1.2 + 1


class TestSlashCosts:
    def test_default_magnitudes_match_calibration(self):
        """Pipeline + update ~= the paper's 42 instructions per record."""
        costs = DEFAULT_SLASH_COSTS
        total_instr = costs.pipeline.instructions + costs.update.instructions
        assert 30 <= total_instr <= 60

    def test_interpreted_scales_hot_path_only(self):
        base = DEFAULT_SLASH_COSTS
        slow = interpreted(base)
        assert slow.pipeline.instructions == pytest.approx(
            base.pipeline.instructions * INTERPRETED_FACTOR
        )
        assert slow.update.instructions == pytest.approx(
            base.update.instructions * INTERPRETED_FACTOR
        )
        # Protocol costs untouched.
        assert slow.merge_pair == base.merge_pair
        assert slow.emit == base.emit

    def test_append_has_lower_mlp_than_update(self):
        """The join-appends-are-memory-intensive calibration point."""
        assert DEFAULT_SLASH_COSTS.append.mlp < DEFAULT_SLASH_COSTS.update.mlp


class TestExchangeCosts:
    def test_partition_lines_grow_with_record_size(self):
        small = UPPAR_COSTS.partition_lines_for(16)
        large = UPPAR_COSTS.partition_lines_for(269)
        assert large > small
        assert large - small == pytest.approx((269 - 16) / 64.0)

    def test_flink_is_uppar_scaled(self):
        assert FLINK_COSTS.partition.instructions == pytest.approx(
            UPPAR_COSTS.partition.instructions * FLINK_RUNTIME_FACTOR
        )
        assert FLINK_COSTS.serde.instructions > 0
        assert UPPAR_COSTS.serde.instructions == 0

    def test_light_update_cheaper_than_update(self):
        assert (
            UPPAR_COSTS.light_update.instructions < UPPAR_COSTS.update.instructions
        )
        assert (
            DEFAULT_SLASH_COSTS.light_update.instructions
            < DEFAULT_SLASH_COSTS.update.instructions
        )
