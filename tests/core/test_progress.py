"""Tests for window trigger bookkeeping."""

from repro.core.progress import WindowTriggerState
from repro.core.windows import SlidingWindow, TumblingWindow


class TestTumblingTrigger:
    def test_window_due_when_frontier_passes_end(self):
        trigger = WindowTriggerState(TumblingWindow(100))
        trigger.note_slices([0, 1])
        assert trigger.due_windows(99) == []
        assert trigger.due_windows(100) == [0]
        assert trigger.due_windows(250) == [1]

    def test_window_fires_once(self):
        trigger = WindowTriggerState(TumblingWindow(100))
        trigger.note_slices([0])
        assert trigger.due_windows(1000) == [0]
        trigger.note_slices([0])  # late re-note must not re-arm
        assert trigger.due_windows(2000) == []
        assert trigger.fired_count() == 1

    def test_due_windows_sorted(self):
        trigger = WindowTriggerState(TumblingWindow(10))
        trigger.note_slices([5, 1, 3])
        assert trigger.due_windows(1000) == [1, 3, 5]

    def test_pending_view_is_copy(self):
        trigger = WindowTriggerState(TumblingWindow(10))
        trigger.note_slices([1])
        view = trigger.pending
        view.clear()
        assert trigger.pending == {1}

    def test_infinite_frontier_drains(self):
        trigger = WindowTriggerState(TumblingWindow(10))
        trigger.note_slices(range(5))
        assert trigger.due_windows(float("inf")) == [0, 1, 2, 3, 4]
        assert trigger.pending == set()


class TestSlidingTrigger:
    def test_slice_arms_covering_windows(self):
        window = SlidingWindow(100, 50)  # 2 slices per window
        trigger = WindowTriggerState(window)
        trigger.note_slices([3])
        # Slice 3 belongs to windows 2 and 3.
        assert trigger.pending == {2, 3}

    def test_window_end_condition(self):
        window = SlidingWindow(100, 50)
        trigger = WindowTriggerState(window)
        trigger.note_slices([0])
        # Window 0 covers slices 0-1, ends at 100; window -1 ends at 50.
        assert trigger.due_windows(50) == [-1]
        assert trigger.due_windows(100) == [0]
