"""Tests for the window assigners."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import QueryError
from repro.core.windows import SessionWindows, SlidingWindow, TumblingWindow


class TestTumbling:
    def test_assignment(self):
        window = TumblingWindow(100)
        timestamps = np.array([0, 99, 100, 250])
        assert list(window.assign(timestamps)) == [0, 0, 1, 2]

    def test_window_end(self):
        assert TumblingWindow(100).window_end(2) == 300

    def test_identity_slices(self):
        window = TumblingWindow(100)
        assert window.windows_of_slice(5) == (5,)
        assert window.slices_of_window(5) == (5,)

    def test_rejects_bad_size(self):
        with pytest.raises(QueryError):
            TumblingWindow(0)

    @given(st.integers(0, 10 ** 12), st.integers(1, 10 ** 6))
    def test_property_record_inside_its_window(self, ts, size):
        window = TumblingWindow(size)
        wid = int(window.assign(np.array([ts]))[0])
        assert wid * size <= ts < window.window_end(wid)


class TestSliding:
    def test_requires_multiple(self):
        with pytest.raises(QueryError):
            SlidingWindow(100, 33)
        with pytest.raises(QueryError):
            SlidingWindow(100, 0)

    def test_slices_per_window(self):
        assert SlidingWindow(100, 25).slices_per_window == 4

    def test_assignment_is_slicing(self):
        window = SlidingWindow(100, 50)
        assert list(window.assign(np.array([0, 49, 50, 149]))) == [0, 0, 1, 2]

    def test_window_end(self):
        window = SlidingWindow(100, 50)  # 2 slices per window
        assert window.window_end(0) == 100
        assert window.window_end(3) == 250

    def test_slice_window_duality(self):
        window = SlidingWindow(100, 25)
        assert window.slices_of_window(4) == (4, 5, 6, 7)
        assert window.windows_of_slice(6) == (3, 4, 5, 6)
        # Duality: w contains s iff s's windows include w.
        for w in window.windows_of_slice(6):
            assert 6 in window.slices_of_window(w)


class TestSessions:
    def test_rejects_bad_gap(self):
        with pytest.raises(QueryError):
            SessionWindows(0)

    def test_no_static_ids(self):
        window = SessionWindows(10)
        assert not window.static_ids
        assert list(window.assign(np.array([5, 100]))) == [0, 0]
        with pytest.raises(QueryError):
            window.window_end(0)

    def test_split_single_session(self):
        window = SessionWindows(10)
        sessions = window.split_sessions([1, 5, 9])
        assert sessions == [(1, 19, [0, 1, 2])]

    def test_split_by_gap(self):
        window = SessionWindows(10)
        sessions = window.split_sessions([0, 5, 30, 35])
        assert len(sessions) == 2
        assert sessions[0] == (0, 15, [0, 1])
        assert sessions[1] == (30, 45, [2, 3])

    def test_split_unsorted_input(self):
        window = SessionWindows(10)
        sessions = window.split_sessions([30, 0, 35, 5])
        assert sessions[0][2] == [1, 3]  # indices of ts 0 and 5
        assert sessions[1][2] == [0, 2]

    def test_split_empty(self):
        assert SessionWindows(10).split_sessions([]) == []

    def test_boundary_gap_exactly_equal_stays_together(self):
        window = SessionWindows(10)
        assert len(window.split_sessions([0, 10])) == 1
        assert len(window.split_sessions([0, 11])) == 2

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=50), st.integers(1, 100))
    def test_property_sessions_partition_input(self, timestamps, gap):
        window = SessionWindows(gap)
        sessions = window.split_sessions(timestamps)
        seen = sorted(i for _s, _e, members in sessions for i in members)
        assert seen == list(range(len(timestamps)))
        # Sessions are separated by more than gap and internally dense.
        for start, end, members in sessions:
            member_ts = sorted(timestamps[i] for i in members)
            assert member_ts[0] == start
            assert end == member_ts[-1] + gap
            for a, b in zip(member_ts, member_ts[1:]):
                assert b - a <= gap
