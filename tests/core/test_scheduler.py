"""Tests for the coroutine-based worker scheduler (paper Fig. 3)."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import SimulationError
from repro.core.scheduler import SCHED_YIELD, CoroScheduler, Park
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Signal, Simulator, Timeout


@pytest.fixture()
def setup():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=1))
    core = cluster.node(0).core(0)
    return sim, core, CoroScheduler(core, name="t")


def test_single_task_runs_to_completion(setup):
    sim, _core, sched = setup
    log = []

    def task():
        log.append("a")
        yield Timeout(1)
        log.append("b")

    sched.add(task())
    sim.run_until_process(sim.process(sched.run()))
    assert log == ["a", "b"]
    assert sim.now == pytest.approx(1)


def test_sched_yield_interleaves_round_robin(setup):
    sim, _core, sched = setup
    log = []

    def task(tag):
        for i in range(3):
            log.append(f"{tag}{i}")
            yield SCHED_YIELD

    sched.add(task("a"))
    sched.add(task("b"))
    sim.process(sched.run())
    sim.run()
    assert log == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_parked_task_does_not_block_others(setup):
    """The paper's key scheduler property: an empty channel parks its
    coroutine while compute tasks keep running."""
    sim, _core, sched = setup
    log = []
    data_ready = Signal()

    def rdma_poller():
        value = yield Park(data_ready)
        log.append(("polled", value, sim.now))

    def compute():
        for _ in range(3):
            yield Timeout(1)
            log.append(("compute", sim.now))

    def firer():
        yield Timeout(2.5)
        data_ready.fire("buf")

    sched.add(rdma_poller())
    sched.add(compute())
    sim.process(sched.run())
    sim.process(firer())
    sim.run()
    assert ("compute", 1.0) in log
    assert ("compute", 2.0) in log
    assert ("polled", "buf", 2.5) in log or ("polled", "buf", 3.0) in log


def test_all_parked_spin_waits_and_charges_core(setup):
    sim, core, sched = setup

    def waiter(sig):
        value = yield Park(sig)
        return value

    sig = Signal()

    def firer():
        yield Timeout(1e-3)
        sig.fire(42)

    sched.add(waiter(sig))
    sim.process(sched.run())
    sim.process(firer())
    sim.run()
    from repro.simnet.counters import CycleCategory

    freq = core.node.config.cpu.frequency_hz
    assert core.counters.cycles[CycleCategory.CORE] >= 0.9 * 1e-3 * freq


def test_park_delivers_value_to_task(setup):
    sim, _core, sched = setup
    received = []
    sig = Signal()
    sig.fire("payload")

    def task():
        value = yield Park(sig)
        received.append(value)

    sched.add(task())
    sim.process(sched.run())
    sim.run()
    assert received == ["payload"]


def test_switches_are_counted_and_charged(setup):
    sim, core, sched = setup

    def task():
        yield SCHED_YIELD
        yield SCHED_YIELD

    sched.add(task())
    sim.process(sched.run())
    sim.run()
    assert sched.switches == 3
    assert core.counters.instructions > 0


def test_bad_yield_value_raises(setup):
    sim, _core, sched = setup

    def task():
        yield 42

    sched.add(task())
    sim.process(sched.run())
    with pytest.raises(SimulationError, match="expected a Waitable"):
        sim.run()


def test_non_generator_task_rejected(setup):
    _sim, _core, sched = setup
    with pytest.raises(SimulationError):
        sched.add(lambda: None)  # type: ignore[arg-type]


def test_task_count_tracks_live_tasks(setup):
    sim, _core, sched = setup
    sig = Signal()

    def parked():
        yield Park(sig)

    sched.add(parked())
    assert sched.task_count == 1
    proc = sim.process(sched.run())
    sim.run(until=0.1)
    assert sched.task_count == 1  # parked, not dead
    sig.fire(None)
    sim.run()
    assert sched.task_count == 0
    assert proc.finished
