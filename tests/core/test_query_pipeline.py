"""Tests for the query builder and pipeline compilation."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.core.pipeline import LEFT, RIGHT, compile_query
from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import SessionWindows, TumblingWindow

SCHEMA = Schema("s", (("ts", "i8"), ("key", "i8"), ("v", "f8")), record_bytes=24)
OTHER = Schema("o", (("ts", "i8"), ("key", "i8")), record_bytes=16)


def agg_query():
    query = Query("q")
    (
        query.stream("s", SCHEMA)
        .filter(lambda b: b.col("v") > 0.5, selectivity=0.5)
        .project("ts", "key", "v")
        .aggregate(TumblingWindow(100), agg="sum", value_field="v")
    )
    return query


def join_query(window=None):
    query = Query("j")
    left = query.stream("s", SCHEMA)
    right = query.stream("o", OTHER)
    left.join(right, window or TumblingWindow(100))
    return query


def make_batch(n=8):
    return SCHEMA.batch_from_columns(
        ts=np.arange(n, dtype=np.int64) * 30,
        key=np.arange(n, dtype=np.int64) % 2,
        v=np.linspace(0, 1, n),
    )


class TestQueryBuilder:
    def test_aggregate_query_validates(self):
        agg_query().validate()

    def test_join_query_validates(self):
        join_query().validate()
        assert join_query().is_join

    def test_no_sink_rejected(self):
        query = Query("q")
        query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="no stateful sink"):
            query.validate()

    def test_no_stream_rejected(self):
        with pytest.raises(QueryError, match="no source"):
            Query("q").validate()

    def test_duplicate_stream_names(self):
        query = Query("q")
        query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="duplicate"):
            query.stream("s", SCHEMA)

    def test_three_streams_rejected(self):
        query = Query("q")
        query.stream("a", SCHEMA)
        query.stream("b", OTHER)
        with pytest.raises(QueryError, match="at most two"):
            query.stream("c", SCHEMA)

    def test_projection_must_keep_ts_and_key(self):
        query = Query("q")
        with pytest.raises(QueryError, match="retain"):
            query.stream("s", SCHEMA).project("ts", "v")

    def test_projection_unknown_field(self):
        query = Query("q")
        with pytest.raises(QueryError, match="unknown"):
            query.stream("s", SCHEMA).project("ts", "key", "zz")

    def test_bad_selectivity(self):
        query = Query("q")
        with pytest.raises(QueryError):
            query.stream("s", SCHEMA).filter(lambda b: b.keys > 0, selectivity=0)

    def test_unknown_aggregate(self):
        query = Query("q")
        stream = query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="unknown aggregate"):
            stream.aggregate(TumblingWindow(10), agg="median")

    def test_sum_needs_value(self):
        query = Query("q")
        stream = query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="value_field"):
            stream.aggregate(TumblingWindow(10), agg="sum")

    def test_session_aggregate_rejected(self):
        query = Query("q")
        stream = query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="session"):
            stream.aggregate(SessionWindows(10), agg="count")

    def test_self_join_rejected(self):
        query = Query("q")
        stream = query.stream("s", SCHEMA)
        with pytest.raises(QueryError, match="itself"):
            stream.join(stream, TumblingWindow(10))

    def test_cross_query_join_rejected(self):
        a = Query("a")
        b = Query("b")
        left = a.stream("s", SCHEMA)
        right = b.stream("o", OTHER)
        with pytest.raises(QueryError, match="same query"):
            left.join(right, TumblingWindow(10))

    def test_terminated_stream_rejects_more_ops(self):
        query = agg_query()
        with pytest.raises(QueryError, match="terminated"):
            query.streams[0].filter(lambda b: b.keys > 0)

    def test_map_value_enables_aggregate(self):
        query = Query("q")
        (
            query.stream("s", SCHEMA)
            .map_value(lambda b: b.col("v") * 2)
            .aggregate(TumblingWindow(10), agg="sum")
        )
        query.validate()


class TestCompiledPipelines:
    def test_aggregation_pipeline_filters_and_groups(self):
        plan = compile_query(agg_query())
        assert not plan.is_join
        result = plan.aggregation.process_batch(make_batch(8))
        # v > 0.5 keeps the last four values of linspace(0, 1, 8).
        assert result.survivors == 4
        assert result.max_timestamp == 7 * 30
        assert all(isinstance(k, tuple) for k in result.partials)

    def test_empty_after_filter(self):
        plan = compile_query(agg_query())
        batch = SCHEMA.batch_from_columns(
            ts=np.array([1]), key=np.array([1]), v=np.array([0.0])
        )
        result = plan.aggregation.process_batch(batch)
        assert result.survivors == 0
        assert result.partials == {}
        assert result.max_timestamp == 1

    def test_join_pipeline_sides(self):
        plan = compile_query(join_query())
        assert plan.is_join
        left, right = plan.join_sides
        assert left.side == LEFT
        assert right.side == RIGHT
        result = left.process_batch(make_batch(4))
        for (win, key), entries in result.partials.items():
            for side, row in entries:
                assert side == LEFT
                assert isinstance(row, tuple)

    def test_session_join_partials_keyed_by_key(self):
        plan = compile_query(join_query(SessionWindows(50)))
        left, _right = plan.join_sides
        result = left.process_batch(make_batch(4))
        for key, entries in result.partials.items():
            assert isinstance(key, int)
            for ts, side, row in entries:
                assert isinstance(ts, float)

    def test_pipeline_for_dispatch(self):
        plan = compile_query(join_query())
        assert plan.pipeline_for("s").side == LEFT
        assert plan.pipeline_for("o").side == RIGHT
        with pytest.raises(QueryError):
            plan.pipeline_for("missing")

    def test_value_column_from_field_and_map(self):
        plan = compile_query(agg_query())
        chain = plan.aggregation.chain
        batch = make_batch(4)
        filtered = chain.apply(batch)
        values = chain.value_column(filtered, "v")
        assert len(values) == len(filtered)
