"""Tests for RunResult contents and the engine's observables."""

import pytest

from repro.core.engine import RunResult, SlashEngine
from repro.simnet.counters import HwCounters
from repro.workloads.ysb import YsbWorkload


def run_small(nodes=2, threads=2):
    workload = YsbWorkload(records_per_thread=800, key_range=100, batch_records=200)
    engine = SlashEngine(epoch_bytes=32 * 1024)
    return engine.run(workload.build_query(), workload.flows(nodes, threads))


class TestRunResult:
    def test_throughput_definition(self):
        result = run_small()
        assert result.throughput_records_per_s == pytest.approx(
            result.input_records / result.sim_seconds
        )

    def test_zero_time_guard(self):
        empty = RunResult("x", "q", 1, 1, 100, 0.0)
        assert empty.throughput_records_per_s == 0.0

    def test_sorted_join_pairs_on_aggregation_is_empty(self):
        result = run_small()
        assert result.sorted_join_pairs() == []

    def test_extra_observables_present(self):
        result = run_small(nodes=3)
        extra = result.extra
        assert extra["connections"] == 3 * 2
        assert extra["state_bytes"] == 0  # all windows drained
        assert extra["trigger_lag_mean_s"] >= 0
        assert extra["trigger_lag_max_s"] >= extra["trigger_lag_mean_s"]

    def test_counters_are_hwcounters(self):
        result = run_small()
        assert isinstance(result.counters, HwCounters)
        assert result.counters.records > 0
        assert result.counters.network_bytes > 0  # SSB deltas crossed the wire

    def test_threads_per_node_reported(self):
        result = run_small(nodes=2, threads=3)
        assert result.threads_per_node == 3
        assert result.nodes == 2

    def test_emitted_equals_aggregate_count(self):
        result = run_small()
        assert result.emitted == len(result.aggregates)


class TestEngineKnobs:
    def test_buffer_bytes_knob_respected(self):
        workload = YsbWorkload(records_per_thread=500, key_range=50, batch_records=100)
        flows = workload.flows(2, 1)
        small = SlashEngine(epoch_bytes=16 * 1024, buffer_bytes=4096)
        large = SlashEngine(epoch_bytes=16 * 1024, buffer_bytes=256 * 1024)
        result_small = small.run(workload.build_query(), flows)
        result_large = large.run(workload.build_query(), flows)
        # Same answers regardless of channel geometry.
        assert result_small.aggregates == result_large.aggregates

    def test_credits_knob_respected(self):
        workload = YsbWorkload(records_per_thread=500, key_range=50, batch_records=100)
        flows = workload.flows(2, 1)
        for credits in (1, 4):
            result = SlashEngine(epoch_bytes=16 * 1024, credits=credits).run(
                workload.build_query(), flows
            )
            assert result.aggregates  # correct under any pipelining depth
