"""Tests for tables, series rendering, and top-down breakdown reports."""

import pytest

from repro.metrics.breakdown import (
    breakdown_percentages,
    breakdown_table,
    dominant_category,
    table1_row,
)
from repro.metrics.reporting import TextTable, format_si, series_block
from repro.simnet.cost_model import OpCost
from repro.simnet.counters import HwCounters


class TestFormatSi:
    def test_magnitudes(self):
        assert format_si(2.04e9, "rec/s") == "2.04 Grec/s"
        assert format_si(1500, "B", digits=1) == "1.5 KB"
        assert format_si(11.8e9) == "11.80 G"
        assert format_si(3.5) == "3.50"
        assert format_si(0, "x") == "0 x"


class TestTextTable:
    def test_render_aligned(self):
        table = TextTable("t", ["a", "long-header"])
        table.add_row(1, "x").add_row("wide-cell", 2)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== t =="
        assert "long-header" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned widths

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            TextTable("t", ["a", "b"]).add_row(1)

    def test_str_is_render(self):
        table = TextTable("t", ["a"])
        assert str(table) == table.render()


def test_series_block():
    block = series_block("fig", "x", {"slash": [(1, 2.0)], "uppar": [(1, 1.0)]})
    assert "== fig ==" in block
    assert "slash" in block and "x=1" in block


def make_counters(memory=100.0, core=10.0, frontend=5.0):
    counters = HwCounters()
    counters.charge(
        OpCost(
            instructions=40, retiring=10, frontend=frontend, bad_spec=2,
            memory=memory, core=core, l1_misses=1.7, l2_misses=1.5,
            llc_misses=1.3, mem_bytes=166,
        ),
        count=100,
    )
    counters.count_records(100)
    return counters


class TestBreakdown:
    def test_percentages_sum_to_100(self):
        shares = breakdown_percentages(make_counters())
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["MemB"] > shares["FeB"]

    def test_dominant_category_ignores_retiring(self):
        assert dominant_category(make_counters(memory=1000)) == "MemB"
        assert dominant_category(make_counters(memory=1, core=1000)) == "CoreB"
        assert dominant_category(make_counters(memory=1, core=1, frontend=50)) == "FeB"

    def test_breakdown_table_renders(self):
        table = breakdown_table("fig9", {"slash sender": make_counters()})
        rendered = table.render()
        assert "slash sender" in rendered
        assert "MemB" in rendered

    def test_table1_row_metrics(self):
        row = table1_row(make_counters(), elapsed_s=1e-3)
        assert row["instr_per_rec"] == pytest.approx(40)
        assert row["llc_miss_per_rec"] == pytest.approx(1.3)
        assert row["mem_bw_bytes_per_s"] == pytest.approx(166 * 100 / 1e-3)
        assert 0 < row["ipc"] < 4
