"""The grid registry: every figure is registered, aliases resolve."""

import pytest

from repro.common.errors import ConfigError
from repro.grid import (
    GRID_ALIASES,
    GRIDS,
    SweepGrid,
    grid_names,
    known_grid_names,
    register_grid,
    resolve_grid,
)

#: Every hand-rolled experiment the grids replaced, plus the traffic suite.
EXPECTED_GRIDS = {
    "fig6a-c", "fig6d-e", "fig7", "fig8ab", "fig8c", "fig8d", "fig9",
    "fig10", "table1", "abl-credits", "abl-epoch", "abl-exec",
    "abl-signal", "extra-latency", "traffic-slo", "traffic-storm",
}


def test_all_figures_and_traffic_suites_registered():
    assert EXPECTED_GRIDS <= set(grid_names())


def test_per_panel_aliases_reproduce_the_old_cli_table():
    assert GRID_ALIASES["fig6a"] == "fig6a-c"
    assert GRID_ALIASES["fig6b"] == "fig6a-c"
    assert GRID_ALIASES["fig6c"] == "fig6a-c"
    assert GRID_ALIASES["fig6d"] == "fig6d-e"
    assert GRID_ALIASES["fig6e"] == "fig6d-e"
    assert GRID_ALIASES["fig8a"] == "fig8ab"
    assert GRID_ALIASES["fig8b"] == "fig8ab"


def test_resolve_grid_by_name_and_alias():
    assert resolve_grid("fig8ab") is GRIDS["fig8ab"]
    assert resolve_grid("fig8a") is GRIDS["fig8ab"]


def test_resolve_grid_unknown_suggests_closest():
    with pytest.raises(ConfigError, match=r"did you mean 'traffic-slo'\?"):
        resolve_grid("traffik-slo")


def test_known_grid_names_cover_aliases():
    names = known_grid_names()
    assert "fig6a-c" in names and "fig6a" in names


def test_every_grid_has_description_axes_and_report():
    for name, grid in GRIDS.items():
        assert grid.description, name
        assert callable(grid.cell) and callable(grid.report), name
        assert grid.title, name


def test_register_grid_rejects_duplicates():
    taken = next(iter(GRIDS))
    dupe = SweepGrid(
        name=taken, description="dupe", axes=(),
        cell=lambda p, f: ("end_to_end", {}), report=lambda run: run,
    )
    with pytest.raises(ConfigError, match="registered twice"):
        register_grid(dupe)


def test_register_grid_rejects_taken_alias():
    clash = SweepGrid(
        name="brand-new-grid", description="clash", axes=(),
        aliases=("fig8a",),
        cell=lambda p, f: ("end_to_end", {}), report=lambda run: run,
    )
    with pytest.raises(ConfigError, match="already taken"):
        register_grid(clash)
    assert "brand-new-grid" not in GRIDS
