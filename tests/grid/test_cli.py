"""The ``python -m repro grid`` subcommand."""

import json

from repro.grid import grid_names
from repro.harness.cli import main


def test_grid_list_names_every_registered_grid(capsys):
    assert main(["grid", "--list"]) == 0
    out = capsys.readouterr().out
    for name in grid_names():
        assert name in out
    assert "traffic-slo" in out


def test_grid_dry_run_prints_cell_count_without_running(capsys):
    assert main(["grid", "fig8ab", "--dry-run"]) == 0
    out = capsys.readouterr().out
    # 8 buffer sizes x 2 transfer-capable engines.
    assert "16 cells" in out
    assert "axis buffer" in out and "axis system" in out


def test_grid_dry_run_resolves_panel_alias(capsys):
    assert main(["grid", "fig6b", "--dry-run"]) == 0
    assert "fig6a-c" in capsys.readouterr().out


def test_grid_axis_override_shrinks_expansion(capsys):
    assert main(["grid", "fig8ab", "--dry-run",
                 "--axis", "buffer=4096", "--axis", "system=slash"]) == 0
    assert "1 cells" in capsys.readouterr().out


def test_grid_unknown_name_exits_2_with_suggestion(capsys):
    assert main(["grid", "traffik-slo"]) == 2
    err = capsys.readouterr().err
    assert "GRID FAILED" in err
    assert "did you mean 'traffic-slo'?" in err


def test_grid_unknown_axis_exits_2_with_suggestion(capsys):
    assert main(["grid", "fig8ab", "--axis", "bufer=4096"]) == 2
    err = capsys.readouterr().err
    assert "unknown axis" in err
    assert "did you mean 'buffer'?" in err


def test_grid_unknown_knob_exits_2_with_suggestion(capsys):
    assert main(["grid", "traffic-slo", "--set", "sed=3"]) == 2
    err = capsys.readouterr().err
    assert "unknown fixed knob" in err
    assert "did you mean 'seed'?" in err


def test_grid_without_name_falls_back_to_listing(capsys):
    assert main(["grid"]) == 0
    assert "traffic-slo" in capsys.readouterr().out


def test_grid_runs_tiny_sweep_and_writes_outputs(tmp_path, capsys):
    code = main([
        "grid", "fig8ab", "--axis", "buffer=4096,65536",
        "--set", "records_per_thread=8000", "--out", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig8a/b" in out
    assert (tmp_path / "fig8ab.txt").exists()
    rows = json.loads((tmp_path / "fig8ab.json").read_text())
    # Buffer is the outermost axis; both transfer engines ride inside.
    assert [row["buffer_bytes"] for row in rows] == [4096, 4096, 65536, 65536]


def test_grid_traffic_slo_single_cell_reports_slo_and_fairness(
    tmp_path, capsys
):
    code = main([
        "grid", "traffic-slo", "--axis", "zipf=0.6",
        "--axis", "policy=fair", "--set", "records_per_thread=600",
        "--set", "batch_records=75", "--out", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "window lag" in out
    assert "per-tenant fairness" in out
    rows = json.loads((tmp_path / "traffic-slo.json").read_text())
    assert rows[0]["policy"] == "fair"
    assert rows[0]["slo_met"] in (True, False)
    assert len(rows[0]["tenants"]) == 4
