"""Grid specs: axis resolution, engine sets, overrides, expansion order."""

import pytest

from repro.common.errors import CapabilityError, ConfigError
from repro.core.system import CAP_OVERLOAD, CAP_TRANSFER_BENCH
from repro.grid import (
    EngineSet,
    SweepGrid,
    expand_grid,
    parse_axis_spec,
    parse_axis_value,
    parse_set_spec,
    resolve_axes,
    resolve_fixed,
)


def _toy_grid(**kwargs):
    defaults = dict(
        name="toy",
        description="toy grid for spec tests",
        axes=(("a", (1, 2)), ("b", ("x", "y", "z"))),
        fixed={"threads": 2, "records": 100},
        cell=lambda point, fixed: ("end_to_end", {**point, **fixed}),
        report=lambda run: run,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


# -- EngineSet ---------------------------------------------------------------

def test_engine_set_capability_filter_registration_order():
    assert EngineSet(capabilities=(CAP_TRANSFER_BENCH,)).resolve() == (
        "uppar", "slash",
    )


def test_engine_set_overload_resolves_to_slash():
    assert EngineSet(capabilities=(CAP_OVERLOAD,)).resolve() == ("slash",)


def test_engine_set_include_preserves_listed_order():
    engines = EngineSet(include=("slash", "flink", "uppar")).resolve()
    assert engines == ("slash", "flink", "uppar")


def test_engine_set_include_still_capability_gated():
    bad = EngineSet(capabilities=(CAP_OVERLOAD,), include=("lightsaber",))
    with pytest.raises(CapabilityError):
        bad.resolve()


def test_engine_set_exclude():
    engines = EngineSet(exclude=("lightsaber", "reference")).resolve()
    assert "lightsaber" not in engines and "reference" not in engines
    assert "slash" in engines


def test_engine_set_narrowed_keeps_capability_gate():
    narrowed = EngineSet(capabilities=(CAP_OVERLOAD,)).narrowed(("flink",))
    with pytest.raises(CapabilityError):
        narrowed.resolve()


# -- axis / fixed resolution -------------------------------------------------

def test_resolve_axes_defaults():
    grid = _toy_grid()
    assert resolve_axes(grid) == {"a": (1, 2), "b": ("x", "y", "z")}


def test_resolve_axes_override():
    grid = _toy_grid()
    axes = resolve_axes(grid, {"b": ("x",)})
    assert axes == {"a": (1, 2), "b": ("x",)}


def test_resolve_axes_unknown_axis_did_you_mean():
    grid = _toy_grid(axes=(("buffer", (4096,)), ("system", ("slash",))))
    with pytest.raises(ConfigError, match=r"did you mean 'buffer'\?"):
        resolve_axes(grid, {"bufer": (8192,)})


def test_resolve_axes_empty_axis_rejected():
    with pytest.raises(ConfigError, match="is empty"):
        resolve_axes(_toy_grid(), {"a": ()})


def test_resolve_axes_engine_override_goes_through_capability_gate():
    grid = _toy_grid(
        axes=(("engine", EngineSet(capabilities=(CAP_OVERLOAD,))),),
    )
    assert resolve_axes(grid) == {"engine": ("slash",)}
    with pytest.raises(CapabilityError):
        resolve_axes(grid, {"engine": ("lightsaber",)})


def test_resolve_fixed_override_and_did_you_mean():
    grid = _toy_grid()
    assert resolve_fixed(grid, {"records": 50}) == {"threads": 2, "records": 50}
    with pytest.raises(ConfigError, match=r"did you mean 'records'\?"):
        resolve_fixed(grid, {"reccords": 50})


# -- expansion ---------------------------------------------------------------

def test_expand_grid_first_axis_outermost():
    run = expand_grid(_toy_grid())
    assert [(p["a"], p["b"]) for p in run.points] == [
        (1, "x"), (1, "y"), (1, "z"),
        (2, "x"), (2, "y"), (2, "z"),
    ]
    assert len(run.cells) == 6
    assert run.results == []


def test_expand_grid_cells_carry_point_and_fixed():
    run = expand_grid(_toy_grid(), fixed_overrides={"threads": 4})
    kind, params = run.cells[0]
    assert kind == "end_to_end"
    assert params == {"a": 1, "b": "x", "threads": 4, "records": 100}


# -- CLI value parsing -------------------------------------------------------

@pytest.mark.parametrize("text,expected", [
    ("8", 8),
    ("0.5", 0.5),
    ("true", True),
    ("False", False),
    ("none", None),
    ("drop-oldest", "drop-oldest"),
])
def test_parse_axis_value(text, expected):
    assert parse_axis_value(text) == expected


def test_parse_axis_spec():
    assert parse_axis_spec("buffer=4096,65536") == ("buffer", (4096, 65536))
    assert parse_axis_spec("policy=fair") == ("policy", ("fair",))


def test_parse_axis_spec_malformed():
    with pytest.raises(ConfigError, match="malformed axis override"):
        parse_axis_spec("buffer")
    with pytest.raises(ConfigError, match="malformed axis override"):
        parse_axis_spec("=4096")


def test_parse_set_spec():
    assert parse_set_spec("seed=3") == ("seed", 3)
    assert parse_set_spec("slo_p99_ms=none") == ("slo_p99_ms", None)
    with pytest.raises(ConfigError, match="malformed knob override"):
        parse_set_spec("seed")
