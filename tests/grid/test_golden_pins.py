"""Grid-ported figures render byte-identical to the committed goldens.

The goldens under ``tests/harness/golden`` were rendered from the
pre-grid hand-rolled experiment loops; the declarative ports must
reproduce them byte for byte, serially *and* over a process pool.
"""

import pathlib

import pytest

from repro.grid import PoolRunner, make_pool, resolve_grid, run_grid

GOLDEN = pathlib.Path(__file__).parent.parent / "harness" / "golden"

#: (grid, axis overrides, fixed overrides, golden file) — the same pinned
#: sizes the legacy golden tests use.
PINS = [
    (
        "fig6a-c",
        {"nodes": (2,)},
        {"threads": 2,
         "workload_overrides": {"records_per_thread": 600,
                                "batch_records": 150}},
        "fig6a_smoke.txt",
    ),
    (
        "fig8ab",
        {"buffer": (4096, 65536)},
        {"threads": 2, "records_per_thread": 8000},
        "fig8a_smoke.txt",
    ),
]


@pytest.mark.parametrize("name,axes,fixed,golden", PINS)
def test_grid_render_matches_committed_golden(name, axes, fixed, golden):
    report = run_grid(resolve_grid(name), axis_overrides=axes,
                      fixed_overrides=fixed)
    assert report.render() + "\n" == (GOLDEN / golden).read_text()


@pytest.mark.parametrize("name,axes,fixed,golden", PINS)
def test_grid_pool_render_matches_committed_golden(name, axes, fixed, golden):
    with make_pool(2) as pool:
        report = run_grid(resolve_grid(name), axis_overrides=axes,
                          fixed_overrides=fixed,
                          runner=PoolRunner(pool, 2))
    assert report.render() + "\n" == (GOLDEN / golden).read_text()
