"""Unit-level tests for the LightSaber-like scale-up engine."""

import math

import pytest

from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.reference import SequentialReference
from repro.workloads.cluster_monitoring import ClusterMonitoringWorkload
from repro.workloads.nexmark import Nexmark7Workload
from repro.workloads.ysb import YsbWorkload


def run(workload, threads=4):
    flows = workload.flows(1, threads)
    expected = SequentialReference().run(workload.build_query(), flows)
    result = LightSaberEngine().run(workload.build_query(), flows)
    assert set(result.aggregates) == set(expected.aggregates)
    for key, value in expected.aggregates.items():
        assert math.isclose(result.aggregates[key], value, rel_tol=1e-9)
    return result


def test_ysb_correct():
    run(YsbWorkload(records_per_thread=900, key_range=80, batch_records=150))


def test_cm_avg_correct():
    run(ClusterMonitoringWorkload(records_per_thread=900, jobs=60, batch_records=150))


def test_nb7_max_correct():
    run(Nexmark7Workload(records_per_thread=900, key_range=60, batch_records=150))


def test_mid_run_windows_fire_before_eos():
    """Worker 0 merges due windows while flows are still running, so
    triggering is not all deferred to the finalizer."""
    workload = YsbWorkload(
        records_per_thread=3000, key_range=30, batch_records=200, windows=8
    )
    result = run(workload, threads=2)
    windows = {win for win, _key in result.aggregates}
    assert len(windows) >= 6


def test_counters_accumulated():
    result = run(YsbWorkload(records_per_thread=600, key_range=40, batch_records=150))
    assert result.counters.instructions > 0
    assert result.counters.records > 0
    assert len(result.per_node_counters) == 1


def test_single_thread_runs():
    run(YsbWorkload(records_per_thread=600, key_range=40, batch_records=150), threads=1)
