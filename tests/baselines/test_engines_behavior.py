"""Behavioural tests on the engines: the paper's qualitative stories.

These are integration-level assertions on *performance observables*
(simulated time, counters), not correctness — correctness is covered by
tests/integration/test_engines_match_reference.py.
"""

import pytest

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.uppar import UpParEngine
from repro.common.config import paper_cluster
from repro.common.errors import ConfigError
from repro.core.engine import SlashEngine
from repro.workloads.ysb import YsbWorkload


def run(engine, nodes=2, threads=4, **workload_kwargs):
    defaults = {"records_per_thread": 2000, "key_range": 10_000, "batch_records": 400}
    defaults.update(workload_kwargs)
    workload = YsbWorkload(**defaults)
    flows = workload.flows(nodes, threads)
    return engine.run(workload.build_query(), flows)


class TestOrdering:
    def test_slash_fastest_flink_slowest(self):
        slash = run(SlashEngine(epoch_bytes=64 * 1024))
        uppar = run(UpParEngine())
        flink = run(FlinkEngine())
        assert (
            slash.throughput_records_per_s
            > uppar.throughput_records_per_s
            > flink.throughput_records_per_s
        )

    def test_slash_weak_scaling_roughly_linear(self):
        two = run(SlashEngine(epoch_bytes=64 * 1024), nodes=2)
        eight = run(SlashEngine(epoch_bytes=64 * 1024), nodes=8)
        per_node_2 = two.throughput_records_per_s / 2
        per_node_8 = eight.throughput_records_per_s / 8
        assert per_node_8 > 0.6 * per_node_2

    def test_lightsaber_single_node_competitive(self):
        """Fig. 7's premise: on ONE node, scale-up is in the same league
        as (or better than) one node's worth of Slash."""
        ls = run(LightSaberEngine(), nodes=1, threads=4)
        slash2 = run(SlashEngine(epoch_bytes=64 * 1024), nodes=2, threads=4)
        assert ls.throughput_records_per_s > 0.3 * slash2.throughput_records_per_s


class TestUpParConstraints:
    def test_needs_two_threads(self):
        with pytest.raises(ConfigError, match="2 threads"):
            run(UpParEngine(), threads=1)

    def test_counters_split_by_role(self):
        result = run(UpParEngine())
        senders = result.extra["sender_counters"]
        receivers = result.extra["receiver_counters"]
        assert senders.records > 0
        assert receivers.records > 0
        assert senders.network_bytes > 0


class TestLightSaberConstraints:
    def test_rejects_multi_node_flows(self):
        with pytest.raises(ConfigError, match="single-node"):
            run(LightSaberEngine(), nodes=2)

    def test_rejects_more_threads_than_cores(self):
        workload = YsbWorkload(records_per_thread=100, key_range=10, batch_records=50)
        flows = workload.flows(1, 11)
        with pytest.raises(ConfigError, match="cores"):
            LightSaberEngine().run(workload.build_query(), flows)

    def test_task_queue_contention_hurts_scaling(self):
        """The shared task queue makes per-thread efficiency drop."""
        one = run(LightSaberEngine(), nodes=1, threads=1)
        ten = run(LightSaberEngine(), nodes=1, threads=10)
        per_thread_1 = one.throughput_records_per_s
        per_thread_10 = ten.throughput_records_per_s / 10
        assert per_thread_10 < per_thread_1


class TestSlashInternalsObservable:
    def test_channel_count_matches_paper(self):
        """Sec. 7.2.2: n^2 channels for state synchronisation."""
        result = run(SlashEngine(epoch_bytes=64 * 1024), nodes=4)
        # One reliable connection per ordered pair: n*(n-1).
        assert result.extra["connections"] == 4 * 3

    def test_state_drained_after_run(self):
        """All windows trigger at EOS, so no state should linger."""
        result = run(SlashEngine(epoch_bytes=64 * 1024))
        assert result.extra["state_bytes"] == 0

    def test_deterministic_across_runs(self):
        a = run(SlashEngine(epoch_bytes=64 * 1024))
        b = run(SlashEngine(epoch_bytes=64 * 1024))
        assert a.sim_seconds == b.sim_seconds
        assert a.aggregates == b.aggregates
        assert a.counters.total_cycles == b.counters.total_cycles

    def test_per_node_counters_cover_cluster(self):
        result = run(SlashEngine(epoch_bytes=64 * 1024), nodes=3)
        assert len(result.per_node_counters) == 3
        total = sum(c.instructions for c in result.per_node_counters)
        assert total == pytest.approx(result.counters.instructions)


class TestFlinkSpecifics:
    def test_serde_charged_per_record(self):
        """Flink pays serialization; UpPar does not."""
        flink = run(FlinkEngine())
        uppar = run(UpParEngine())
        flink_instr = flink.counters.instructions / flink.input_records
        uppar_instr = uppar.counters.instructions / uppar.input_records
        assert flink_instr > 2 * uppar_instr

    def test_larger_cluster_config_honoured(self):
        engine = FlinkEngine(cluster_config=paper_cluster(2))
        with pytest.raises(ConfigError, match="cluster"):
            run(engine, nodes=4)
