"""Tests for the two-node drill-down transfer benches."""

import pytest

from repro.baselines.transfer import SlashTransferBench, UpParTransferBench
from repro.common.errors import ConfigError
from repro.workloads.readonly import ReadOnlyWorkload
from repro.workloads.ysb import YsbWorkload

RO = lambda n=8000: ReadOnlyWorkload(records_per_thread=n, key_range=2000, batch_records=2000)


class TestSlashTransfer:
    def test_counts_are_correct(self):
        workload = ReadOnlyWorkload(records_per_thread=2000, key_range=100, batch_records=500)
        result = SlashTransferBench(threads=2).run(workload)
        assert result.records == 4000
        assert sum(v for v in result.state.values()) == 4000

    def test_throughput_below_link_rate(self):
        result = SlashTransferBench(threads=2).run(RO())
        assert 0 < result.throughput_bytes_per_s <= 11.8e9

    def test_more_threads_more_throughput_until_saturation(self):
        one = SlashTransferBench(threads=1).run(RO())
        four = SlashTransferBench(threads=4).run(RO())
        assert four.throughput_bytes_per_s > one.throughput_bytes_per_s

    def test_larger_buffers_higher_latency(self):
        small = SlashTransferBench(threads=2, buffer_bytes=8 * 1024).run(RO(4000))
        large = SlashTransferBench(threads=2, buffer_bytes=512 * 1024).run(RO(16000))
        assert large.mean_latency_s > small.mean_latency_s

    def test_counters_populated(self):
        result = SlashTransferBench(threads=2).run(RO(4000))
        assert result.sender_counters.total_cycles > 0
        assert result.receiver_counters.records > 0

    def test_signaled_writes_cost_more_cpu(self):
        plain = SlashTransferBench(threads=1, buffer_bytes=8192).run(RO(4000))
        signaled = SlashTransferBench(
            threads=1, buffer_bytes=8192, signal_writes=True
        ).run(RO(4000))
        assert (
            signaled.sender_counters.total_cycles > plain.sender_counters.total_cycles
        )


class TestUpParTransfer:
    def test_counts_are_correct(self):
        workload = ReadOnlyWorkload(records_per_thread=2000, key_range=100, batch_records=500)
        result = UpParTransferBench(threads=2).run(workload)
        assert sum(result.state.values()) == 4000

    def test_slower_than_slash_at_low_parallelism(self):
        workload = RO()
        slash = SlashTransferBench(threads=2).run(workload)
        uppar = UpParTransferBench(threads=2).run(workload)
        assert uppar.throughput_bytes_per_s < slash.throughput_bytes_per_s

    def test_ysb_state_matches_between_shapes(self):
        """Both shapes compute identical YSB window counts."""
        workload = YsbWorkload(records_per_thread=1500, key_range=100, batch_records=300)
        slash = SlashTransferBench(threads=2).run(workload)
        uppar = UpParTransferBench(threads=2).run(workload)
        assert slash.state == uppar.state

    def test_skew_degrades_uppar_but_not_slash(self):
        """Fig. 8d: skewed keys collapse the hash-partitioned shape
        (one consumer owns the hot keys) but leave Slash flat."""
        uniform = ReadOnlyWorkload(records_per_thread=8000, key_range=100_000, batch_records=2000)
        skewed = ReadOnlyWorkload(
            records_per_thread=8000, key_range=100_000, zipf_z=2.0, batch_records=2000
        )
        uppar_uniform = UpParTransferBench(threads=8).run(uniform)
        uppar_skewed = UpParTransferBench(threads=8).run(skewed)
        slash_uniform = SlashTransferBench(threads=8).run(uniform)
        slash_skewed = SlashTransferBench(threads=8).run(skewed)
        assert uppar_skewed.throughput_bytes_per_s < 0.8 * uppar_uniform.throughput_bytes_per_s
        slash_ratio = slash_skewed.throughput_bytes_per_s / slash_uniform.throughput_bytes_per_s
        assert slash_ratio > 0.9  # Slash is skew-agnostic on RO

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigError):
            UpParTransferBench(threads=0)


class TestDeferredMerge:
    def test_fold_matches_incremental_merge(self, rng):
        """The end-of-run fold equals merging every batch key by key."""
        from repro.baselines.transfer import _DeferredMerge
        from repro.core.aggregations import group_reduce, partial_aggregate
        from repro.state.crdt import crdt_by_name

        crdt = crdt_by_name("count")
        deferred = _DeferredMerge()
        reference: dict = {}
        for _ in range(20):
            n = int(rng.integers(1, 400))
            wins = rng.integers(0, 3, size=n)
            keys = rng.integers(0, 50, size=n)
            group_windows, group_keys, partials = group_reduce(
                crdt, wins, keys, None
            )
            deferred.add(
                type("R", (), {
                    "group_windows": group_windows,
                    "group_keys": group_keys,
                    "group_partials": partials,
                })
            )
            crdt.merge_into(reference, partial_aggregate(crdt, wins, keys, None))
        state: dict = {}
        deferred.fold_into(state)
        assert state == reference

    def test_empty_fold_is_a_noop(self):
        from repro.baselines.transfer import _DeferredMerge

        state = {("w", 1): 2}
        _DeferredMerge().fold_into(state)
        assert state == {("w", 1): 2}
