"""Tests for the sequential reference executor."""

import pytest

from repro.baselines.reference import SequentialReference
from repro.workloads.readonly import ReadOnlyWorkload
from repro.workloads.ysb import YsbWorkload
from repro.workloads.nexmark import Nexmark8Workload


def test_counts_match_manual_fold():
    workload = ReadOnlyWorkload(records_per_thread=500, key_range=20)
    flows = workload.flows(1, 2)
    output = SequentialReference().run(workload.build_query(), flows)
    manual = {}
    for flow in flows.values():
        for _stream, batch in flow:
            for key in batch.keys:
                manual[int(key)] = manual.get(int(key), 0) + 1
    assert {key: v for (_win, key), v in output.aggregates.items()} == manual
    assert output.records == 1000


def test_filter_applied():
    workload = YsbWorkload(records_per_thread=900, key_range=10)
    flows = workload.flows(1, 1)
    output = SequentialReference().run(workload.build_query(), flows)
    total_counted = sum(output.aggregates.values())
    assert 0 < total_counted < 900  # only 'view' events survive


def test_join_pairs_sorted_and_consistent():
    workload = Nexmark8Workload(records_per_thread=300, sellers=10)
    flows = workload.flows(1, 1)
    output = SequentialReference().run(workload.build_query(), flows)
    assert output.join_pairs == sorted(output.join_pairs)
    assert len(output.join_pairs) > 0
    # Every pair joins on the key recorded in the tuple.
    for _win, key, left, right in output.join_pairs:
        assert left[1] == key  # key field position per schema
        assert right[1] == key


def test_order_of_flows_is_irrelevant():
    workload = ReadOnlyWorkload(records_per_thread=400, key_range=50)
    flows = workload.flows(1, 3)
    reversed_flows = dict(reversed(list(flows.items())))
    a = SequentialReference().run(workload.build_query(), flows)
    b = SequentialReference().run(workload.build_query(), reversed_flows)
    assert a.aggregates == b.aggregates
