"""Tests for the IPoIB socket-channel model."""

import pytest

from repro.baselines.ipoib import IpoibChannel, IpoibFabric
from repro.channel.channel import CHANNEL_EOS
from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator


@pytest.fixture()
def setup():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=2))
    fabric = IpoibFabric(sim)
    channel = IpoibChannel(
        fabric, cluster.node(0), cluster.node(1), credits=4, buffer_bytes=64 * 1024
    )
    return sim, cluster, channel


def test_roundtrip_fifo(setup):
    sim, cluster, channel = setup
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)
    received = []

    def producer():
        for i in range(6):
            yield from channel.send(core_a, i, 1024)
        yield from channel.close(core_a)

    def consumer():
        while True:
            payload, _n = yield from channel.recv(core_b)
            if payload is CHANNEL_EOS:
                return
            received.append(payload)
            yield from channel.release(core_b)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    assert received == list(range(6))
    assert channel.eos


def test_ipoib_slower_than_rdma_for_same_bytes(setup):
    """The whole point of the model: same bytes, worse time."""
    sim, cluster, channel = setup
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)
    nbytes = 32 * 1024

    def producer():
        yield from channel.send(core_a, "x", nbytes)

    def consumer():
        yield from channel.recv(core_b)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    rdma_wire = 2 * nbytes / cluster.config.node.nic.bandwidth_bytes_per_s
    assert sim.now > 2 * rdma_wire  # lower bandwidth + syscalls + latency


def test_window_backpressure(setup):
    sim, cluster, channel = setup
    core = cluster.node(0).core(0)
    sent = []

    def producer():
        for i in range(10):
            yield from channel.send(core, i, 512)
            sent.append(i)

    sim.process(producer())
    sim.run(until=0.05)
    assert sent == [0, 1, 2, 3]  # 4-credit window, consumer never acks


def test_send_after_close_rejected(setup):
    sim, cluster, channel = setup
    core = cluster.node(0).core(0)

    def producer():
        yield from channel.close(core)
        yield from channel.send(core, "late", 8)

    sim.process(producer())
    with pytest.raises(ProtocolError, match="after EOS"):
        sim.run()


def test_oversized_payload_rejected(setup):
    sim, cluster, channel = setup
    core = cluster.node(0).core(0)

    def producer():
        yield from channel.send(core, "big", 1 << 20)

    sim.process(producer())
    with pytest.raises(ProtocolError, match="exceeds buffer"):
        sim.run()


def test_syscall_cost_charged_both_sides(setup):
    sim, cluster, channel = setup
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)

    def producer():
        yield from channel.send(core_a, "x", 4096)

    def consumer():
        yield from channel.recv(core_b)
        yield from channel.release(core_b)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    syscall = cluster.config.node.nic.ipoib_syscall_cycles
    assert core_a.counters.total_cycles >= syscall
    assert core_b.counters.total_cycles >= syscall


def test_loopback_skips_nic(setup):
    sim, cluster, _ = setup
    fabric = IpoibFabric(sim)
    local = IpoibChannel(fabric, cluster.node(0), cluster.node(0))
    core = cluster.node(0).core(0)
    received = []

    def producer():
        yield from local.send(core, "x", 128)

    def consumer():
        payload, _n = yield from local.recv(cluster.node(0).core(1))
        received.append(payload)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    assert received == ["x"]
    assert fabric.tx(cluster.node(0)).total_bytes == 0  # no NIC traffic


def test_fabric_pipes_are_shared_per_node(setup):
    sim, cluster, _ = setup
    fabric = IpoibFabric(sim)
    assert fabric.tx(cluster.node(0)) is fabric.tx(cluster.node(0))
    assert fabric.tx(cluster.node(0)) is not fabric.tx(cluster.node(1))
    assert fabric.tx(cluster.node(0)) is not fabric.rx(cluster.node(0))


# -- the injector's data-plane fault surface --------------------------------
class _FakeFaults:
    """Duck-typed stand-in for the injector's drop-WRITE surface."""

    def __init__(self, drops: int, max_retries: int = 8, rto_s: float = 1e-6):
        self.drops = drops
        self.max_retries = max_retries
        self.rto_s = rto_s
        self.asked = 0

    def should_drop_write(self, src_index: int, nbytes: int) -> bool:
        self.asked += 1
        if self.drops > 0:
            self.drops -= 1
            return True
        return False


def test_dropped_segment_is_retransmitted(setup):
    """TCP semantics: the injector eats segments, the stack retries, the
    payload still arrives exactly once."""
    sim, cluster, channel = setup
    faults = _FakeFaults(drops=2, rto_s=1e-6)
    sim.faults = faults
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)
    received = []

    def producer():
        yield from channel.send(core_a, "x", 1024)

    def consumer():
        payload, _n = yield from channel.recv(core_b)
        received.append(payload)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    assert received == ["x"]
    assert faults.drops == 0
    assert faults.asked >= 3  # two drops + the delivered attempt


def test_retransmission_backs_off_exponentially(setup):
    sim, cluster, channel = setup
    rto = 2e-6
    sim.faults = _FakeFaults(drops=3, rto_s=rto)
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)

    def producer():
        yield from channel.send(core_a, "x", 1024)

    def consumer():
        yield from channel.recv(core_b)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)
    # Three RTO waits at doubling intervals: rto + 2*rto + 4*rto.
    assert sim.now >= 7 * rto


def test_blackholed_path_exhausts_retries(setup):
    sim, cluster, channel = setup
    sim.faults = _FakeFaults(drops=10 ** 6, max_retries=3)
    core_a = cluster.node(0).core(0)

    def producer():
        yield from channel.send(core_a, "x", 1024)

    sim.process(producer())
    with pytest.raises(ProtocolError, match="retransmissions exhausted"):
        sim.run()


def test_withheld_acks_starve_the_window_until_flushed(setup):
    """Zero-window fault: releases stop paying the sender until the
    injector lifts the starvation and flush_withheld drains the acks."""
    sim, cluster, channel = setup
    core_a = cluster.node(0).core(0)
    core_b = cluster.node(1).core(0)
    channel.withhold_credits = True
    sent_at = {}

    def producer():
        # credits=4: the fifth send must stall until acks flow again.
        for i in range(5):
            yield from channel.send(core_a, i, 256)
            sent_at[i] = sim.now

    def consumer():
        got = 0
        while got < 4:
            _payload, _n = yield from channel.recv(core_b)
            yield from channel.release(core_b)
            got += 1
        stalled_until = sim.now
        channel.withhold_credits = False
        yield from channel.flush_withheld(core_b)
        _payload, _n = yield from channel.recv(core_b)
        yield from channel.release(core_b)
        return stalled_until

    sim.process(producer())
    proc = sim.process(consumer())
    flushed_at = sim.run_until_process(proc)
    assert channel._withheld == 0
    assert sent_at[4] >= flushed_at  # fifth send waited for the flush
