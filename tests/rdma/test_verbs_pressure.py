"""Tests for the NIC WQE-pressure model behind the credits ablation."""

import pytest

from repro.common.config import ClusterConfig
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator, Timeout


def setup():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=2))
    cm = ConnectionManager(cluster)
    qp, _peer = cm.connect(0, 1)
    region = cm.register_region(1, 64 << 20)
    return sim, cluster, qp, region


def run_burst(outstanding_target: int) -> float:
    """Post a burst of writes back-to-back; return completion time."""
    sim, cluster, qp, region = setup()
    core = cluster.node(0).core(0)
    nbytes = 8192
    done = {}

    def sender():
        for i in range(outstanding_target):
            yield from qp.post_write(
                core, i, nbytes, region, i * nbytes * 2, signaled=False
            )
        # Wait for delivery of everything.
        while len(region.occupied_offsets()) < outstanding_target:
            yield Timeout(1e-6)
        done["t"] = sim.now

    sim.process(sender())
    sim.run()
    return done["t"] / outstanding_target  # per-message time


def test_deep_bursts_pay_wqe_pressure():
    """Marginal per-message cost grows once the WQE cache overflows.

    Comparing marginal (not average) times cancels the fixed setup and
    drain tails of a burst.
    """
    t8 = run_burst(8) * 8
    t16 = run_burst(16) * 16
    t96 = run_burst(96) * 96
    t192 = run_burst(192) * 192
    marginal_shallow = (t16 - t8) / 8
    marginal_deep = (t192 - t96) / 96
    assert marginal_deep > marginal_shallow * 1.2


def test_outstanding_counter_tracks_in_flight():
    sim, cluster, qp, region = setup()
    core = cluster.node(0).core(0)
    observed = []

    def sender():
        for i in range(3):
            yield from qp.post_write(core, i, 1024, region, i * 4096, signaled=False)
        observed.append(qp.outstanding)
        yield Timeout(1e-3)
        observed.append(qp.outstanding)

    sim.process(sender())
    sim.run()
    assert observed[0] == 3  # all still in flight right after posting
    assert observed[1] == 0  # all delivered after a millisecond
