"""Unit tests for queue pairs, WRITE/SEND verbs, and completion queues."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError
from repro.rdma.connection import ConnectionManager
from repro.rdma.verbs import WorkKind
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator, Timeout


@pytest.fixture()
def setup():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=3))
    cm = ConnectionManager(cluster)
    return sim, cluster, cm


def test_write_delivers_payload_atomically(setup):
    sim, cluster, cm = setup
    qp_a, _qp_b = cm.connect(0, 1)
    region = cm.register_region(1, 1 << 20)
    core = cluster.node(0).core(0)
    observations = []

    def sender():
        yield from qp_a.post_write(core, "payload", 64 * 1024, region, 0)

    def watcher():
        # Immediately after posting, nothing is visible yet.
        yield Timeout(1e-9)
        observations.append(region.poll(0))
        yield Timeout(1e-3)
        observations.append(region.poll(0))

    sim.process(sender())
    sim.process(watcher())
    sim.run()
    assert observations == [False, True]
    assert region.load(0) == ("payload", 64 * 1024)


def test_write_completion_signaled(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region = cm.register_region(1, 1 << 20)
    core = cluster.node(0).core(0)
    results = {}

    def sender():
        wr = yield from qp_a.post_write(core, "p", 4096, region, 0, signaled=True)
        yield Timeout(1e-3)
        completions = yield from qp_a.poll_cq(core)
        results["wr"] = wr
        results["completions"] = completions

    sim.process(sender())
    sim.run()
    (completion,) = results["completions"]
    assert completion.wr_id == results["wr"]
    assert completion.kind == WorkKind.WRITE
    assert completion.nbytes == 4096


def test_write_unsignaled_generates_no_completion(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region = cm.register_region(1, 1 << 20)
    core = cluster.node(0).core(0)

    def sender():
        yield from qp_a.post_write(core, "p", 4096, region, 0, signaled=False)
        yield Timeout(1e-3)

    sim.process(sender())
    sim.run()
    assert len(qp_a.send_cq) == 0
    assert region.poll(0)


def test_write_to_wrong_node_region_rejected(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region_on_2 = cm.register_region(2, 1 << 20)
    core = cluster.node(0).core(0)

    def sender():
        yield from qp_a.post_write(core, "p", 64, region_on_2, 0)

    sim.process(sender())
    with pytest.raises(ProtocolError, match="peers node"):
        sim.run()


def test_writes_on_one_qp_arrive_in_order(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region = cm.register_region(1, 1 << 20)
    core = cluster.node(0).core(0)
    arrivals = []

    def sender():
        for i in range(4):
            yield from qp_a.post_write(core, f"m{i}", 128 * 1024, region, i * 256 * 1024)

    def watcher():
        seen = set()
        for _ in range(200):
            yield Timeout(2e-6)
            for offset in region.occupied_offsets():
                if offset not in seen:
                    seen.add(offset)
                    arrivals.append(offset)
            if len(seen) == 4:
                return

    sim.process(sender())
    sim.process(watcher())
    sim.run()
    assert arrivals == sorted(arrivals)


def test_send_recv_roundtrip(setup):
    sim, cluster, cm = setup
    qp_a, qp_b = cm.connect(0, 1)
    core_a = cluster.node(0).core(0)
    received = []

    def sender():
        yield from qp_a.post_send(core_a, {"credit": 1}, 16)

    def receiver():
        payload, nbytes = yield qp_b.recv()
        received.append((payload, nbytes, sim.now))

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    (payload, nbytes, when) = received[0]
    assert payload == {"credit": 1}
    assert nbytes == 16
    assert when > 0  # latency applied


def test_try_recv_nonblocking(setup):
    sim, cluster, cm = setup
    qp_a, qp_b = cm.connect(0, 1)
    core_a = cluster.node(0).core(0)
    assert qp_b.try_recv() == (False, None, 0)

    def sender():
        yield from qp_a.post_send(core_a, "tok", 8)

    sim.process(sender())
    sim.run()
    ok, payload, nbytes = qp_b.try_recv()
    assert (ok, payload, nbytes) == (True, "tok", 8)


def test_send_on_unpaired_qp_raises(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    qp_a.peer = None
    core = cluster.node(0).core(0)

    def sender():
        yield from qp_a.post_send(core, "x", 8)

    sim.process(sender())
    with pytest.raises(ProtocolError, match="unpaired"):
        sim.run()


def test_posting_charges_doorbell_to_core(setup):
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region = cm.register_region(1, 1 << 20)
    core = cluster.node(0).core(0)

    def sender():
        yield from qp_a.post_write(core, "p", 64, region, 0)

    sim.process(sender())
    sim.run()
    assert core.counters.total_cycles > 0
    assert core.counters.network_bytes == 64


def test_connection_manager_counts(setup):
    _sim, _cluster, cm = setup
    cm.connect(0, 1)
    cm.connect(0, 2)
    assert cm.connection_count == 2
    assert cm.queue_pair_count == 4


def test_connect_self_rejected(setup):
    _sim, _cluster, cm = setup
    with pytest.raises(ProtocolError):
        cm.connect(1, 1)


def test_register_region_respects_dram(setup):
    _sim, cluster, cm = setup
    with pytest.raises(ProtocolError, match="exceeds DRAM"):
        cm.register_region(0, cluster.config.node.dram_bytes + 1)
    assert cm.registered_bytes(0) == 0
    cm.register_region(0, 4096)
    cm.register_region(1, 8192)
    assert cm.registered_bytes(0) == 4096
    assert cm.registered_bytes() == 12288


def test_write_bandwidth_matches_nic(setup):
    """A 1 MiB write takes roughly size/bandwidth end to end."""
    sim, cluster, cm = setup
    qp_a, _ = cm.connect(0, 1)
    region = cm.register_region(1, 4 << 20)
    core = cluster.node(0).core(0)
    nbytes = 1 << 20
    done_at = {}

    def sender():
        yield from qp_a.post_write(core, "big", nbytes, region, 0)

    def watcher():
        while not region.poll(0):
            yield Timeout(1e-6)
        done_at["t"] = sim.now

    sim.process(sender())
    sim.process(watcher())
    sim.run()
    bw = cluster.config.node.nic.bandwidth_bytes_per_s
    # tx + rx serialization, small extra for latencies and poll quantum.
    assert done_at["t"] == pytest.approx(2 * nbytes / bw, rel=0.2)
