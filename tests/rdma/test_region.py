"""Unit tests for RDMA memory regions."""

import pytest

from repro.common.errors import ProtocolError
from repro.rdma.region import MemoryRegion


def test_store_load_roundtrip():
    region = MemoryRegion(0, 1024)
    region.store(64, {"k": 1}, 128)
    payload, nbytes = region.load(64)
    assert payload == {"k": 1}
    assert nbytes == 128


def test_poll_reflects_occupancy():
    region = MemoryRegion(0, 1024)
    assert not region.poll(0)
    region.store(0, "x", 10)
    assert region.poll(0)
    region.clear(0)
    assert not region.poll(0)


def test_load_empty_offset_raises():
    region = MemoryRegion(0, 1024)
    with pytest.raises(ProtocolError, match="empty offset"):
        region.load(0)


def test_clear_empty_offset_raises():
    region = MemoryRegion(0, 1024)
    with pytest.raises(ProtocolError):
        region.clear(8)


def test_out_of_bounds_rejected():
    region = MemoryRegion(0, 1024)
    with pytest.raises(ProtocolError, match="out of bounds"):
        region.store(1000, "x", 100)
    with pytest.raises(ProtocolError):
        region.store(-8, "x", 8)


def test_zero_size_region_rejected():
    with pytest.raises(ProtocolError):
        MemoryRegion(0, 0)


def test_remote_store_requires_rkey():
    region = MemoryRegion(0, 1024)
    with pytest.raises(ProtocolError, match="bad rkey"):
        region.remote_store(region.rkey + 1, 0, "x", 8)
    region.remote_store(region.rkey, 0, "x", 8)
    assert region.load(0) == ("x", 8)


def test_remote_store_refuses_overwrite():
    """Flow-control invariant: an unconsumed buffer must never be clobbered."""
    region = MemoryRegion(0, 1024)
    region.remote_store(region.rkey, 0, "first", 8)
    with pytest.raises(ProtocolError, match="flow control"):
        region.remote_store(region.rkey, 0, "second", 8)


def test_remote_load_requires_rkey():
    region = MemoryRegion(0, 1024)
    region.store(0, "x", 8)
    with pytest.raises(ProtocolError):
        region.remote_load(region.rkey ^ 1, 0)
    assert region.remote_load(region.rkey, 0) == ("x", 8)


def test_rkeys_are_unique():
    assert MemoryRegion(0, 8).rkey != MemoryRegion(0, 8).rkey


def test_occupied_offsets_sorted():
    region = MemoryRegion(0, 1024)
    for offset in (512, 0, 256):
        region.store(offset, "x", 8)
    assert region.occupied_offsets() == [0, 256, 512]
