"""Regression test for the cooperative-close deadlock.

With a single credit per state channel, two peers' shippers both spin
for credit at close time; the merge coroutines that would return the
credit share the same cores and never run.  `close_cooperative` parks
instead of spinning, letting the scheduler interleave — the exact
failure mode the paper's coroutine design exists to prevent (Sec. 5.3).
"""

import math

import pytest

from repro.baselines.reference import SequentialReference
from repro.core.engine import SlashEngine
from repro.workloads.ysb import YsbWorkload


@pytest.mark.parametrize("credits", [1, 2])
def test_single_credit_state_channels_do_not_deadlock(credits):
    workload = YsbWorkload(records_per_thread=600, key_range=80, batch_records=150)
    flows = workload.flows(3, 2)
    expected = SequentialReference().run(workload.build_query(), flows)
    engine = SlashEngine(epoch_bytes=16 * 1024, credits=credits)
    result = engine.run(workload.build_query(), flows)
    assert set(result.aggregates) == set(expected.aggregates)
    for key, value in expected.aggregates.items():
        assert math.isclose(result.aggregates[key], value, rel_tol=1e-9)


def test_close_cooperative_marks_channel_closed():
    from repro.channel.channel import RdmaChannel
    from repro.common.config import ClusterConfig
    from repro.core.scheduler import CoroScheduler
    from repro.rdma.connection import ConnectionManager
    from repro.simnet.cluster import Cluster
    from repro.simnet.kernel import Simulator

    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=2))
    cm = ConnectionManager(cluster)
    channel = RdmaChannel.create(cm, 0, 1, credits=1, buffer_bytes=4096)
    core = cluster.node(0).core(0)
    scheduler = CoroScheduler(core)

    def task():
        yield from channel.producer.close_cooperative(core)

    scheduler.add(task())
    sim.run_until_process(sim.process(scheduler.run()))
    assert channel.producer.closed
