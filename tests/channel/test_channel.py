"""Integration-style unit tests for RDMA and local channels."""

import pytest

from repro.channel.channel import CHANNEL_EOS, LocalChannel, RdmaChannel
from repro.channel.circular_queue import FOOTER_BYTES, CircularQueue
from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError
from repro.rdma.connection import ConnectionManager
from repro.rdma.region import MemoryRegion
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator


def make_channel(credits=4, buffer_bytes=4096, nodes=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=nodes))
    cm = ConnectionManager(cluster)
    channel = RdmaChannel.create(cm, 0, 1, credits=credits, buffer_bytes=buffer_bytes)
    return sim, cluster, channel


class TestCircularQueue:
    def test_geometry(self):
        region = MemoryRegion(0, 4 * 1024)
        queue = CircularQueue(region, credits=4, buffer_bytes=1024)
        assert queue.payload_capacity == 1024 - FOOTER_BYTES
        assert queue.offset_of(0) == 0
        assert queue.offset_of(5) == 1024  # wraps

    def test_region_too_small(self):
        region = MemoryRegion(0, 1024)
        with pytest.raises(ProtocolError, match="too small"):
            CircularQueue(region, credits=4, buffer_bytes=1024)

    def test_bad_geometry(self):
        region = MemoryRegion(0, 1024)
        with pytest.raises(ProtocolError):
            CircularQueue(region, credits=0, buffer_bytes=128)
        with pytest.raises(ProtocolError):
            CircularQueue(region, credits=2, buffer_bytes=FOOTER_BYTES)

    def test_payload_check(self):
        region = MemoryRegion(0, 4096)
        queue = CircularQueue(region, credits=4, buffer_bytes=1024)
        queue.check_payload(1000)
        with pytest.raises(ProtocolError, match="exceeds slot"):
            queue.check_payload(1024)
        with pytest.raises(ProtocolError):
            queue.check_payload(-1)


class TestRdmaChannel:
    def test_fifo_delivery(self):
        sim, cluster, channel = make_channel()
        sender_core = cluster.node(0).core(0)
        receiver_core = cluster.node(1).core(0)
        received = []

        def producer():
            for i in range(10):
                yield from channel.producer.send(sender_core, f"msg{i}", 512)
            yield from channel.producer.close(sender_core)

        def consumer():
            while True:
                payload, nbytes = yield from channel.consumer.recv(receiver_core)
                if payload is CHANNEL_EOS:
                    yield from channel.consumer.release(receiver_core)
                    return
                received.append(payload)
                yield from channel.consumer.release(receiver_core)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert received == [f"msg{i}" for i in range(10)]
        assert channel.consumer.eos

    def test_producer_blocks_without_credit(self):
        """With c credits and a stalled consumer, only c sends complete."""
        sim, cluster, channel = make_channel(credits=3)
        core = cluster.node(0).core(0)
        sent = []

        def producer():
            for i in range(6):
                yield from channel.producer.send(core, i, 100)
                sent.append(i)

        sim.process(producer())
        sim.run(until=0.01)  # consumer never receives/releases
        assert sent == [0, 1, 2]
        assert channel.stats.credit_stalls >= 1 or len(sent) == 3

    def test_credit_return_unblocks_producer(self):
        sim, cluster, channel = make_channel(credits=1)
        prod_core = cluster.node(0).core(0)
        cons_core = cluster.node(1).core(0)
        received = []

        def producer():
            for i in range(5):
                yield from channel.producer.send(prod_core, i, 100)

        def consumer():
            for _ in range(5):
                payload, _ = yield from channel.consumer.recv(cons_core)
                received.append(payload)
                yield from channel.consumer.release(cons_core)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert received == [0, 1, 2, 3, 4]
        assert channel.stats.credit_stall_s > 0

    def test_send_after_eos_rejected(self):
        sim, cluster, channel = make_channel()
        core = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.close(core)
            yield from channel.producer.send(core, "late", 10)

        sim.process(producer())
        with pytest.raises(ProtocolError, match="after EOS"):
            sim.run()

    def test_oversized_payload_rejected(self):
        sim, cluster, channel = make_channel(buffer_bytes=1024)
        core = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.send(core, "big", 2048)

        sim.process(producer())
        with pytest.raises(ProtocolError, match="exceeds slot"):
            sim.run()

    def test_release_without_recv_rejected(self):
        sim, cluster, channel = make_channel()
        core = cluster.node(1).core(0)

        def consumer():
            yield from channel.consumer.release(core)

        sim.process(consumer())
        with pytest.raises(ProtocolError, match="without a received buffer"):
            sim.run()

    def test_try_recv_nonblocking(self):
        sim, cluster, channel = make_channel()
        prod_core = cluster.node(0).core(0)
        cons_core = cluster.node(1).core(0)
        assert channel.consumer.try_recv(cons_core) == (False, None, 0)

        def producer():
            yield from channel.producer.send(prod_core, "x", 64)

        sim.process(producer())
        sim.run()
        ok, payload, nbytes = channel.consumer.try_recv(cons_core)
        assert (ok, payload, nbytes) == (True, "x", 64)

    def test_latency_recorded(self):
        sim, cluster, channel = make_channel()
        prod_core = cluster.node(0).core(0)
        cons_core = cluster.node(1).core(0)

        def producer():
            yield from channel.producer.send(prod_core, "x", 2048)

        def consumer():
            yield from channel.consumer.recv(cons_core)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert channel.stats.mean_latency_s > 0
        # A 2 KiB buffer on a 100 Gb/s link lands within tens of microseconds.
        assert channel.stats.mean_latency_s < 100e-6

    def test_ring_wraparound_many_messages(self):
        """More messages than credits exercises slot reuse."""
        sim, cluster, channel = make_channel(credits=2)
        prod_core = cluster.node(0).core(0)
        cons_core = cluster.node(1).core(0)
        count = 20
        received = []

        def producer():
            for i in range(count):
                yield from channel.producer.send(prod_core, i, 128)

        def consumer():
            for _ in range(count):
                payload, _ = yield from channel.consumer.recv(cons_core)
                received.append(payload)
                yield from channel.consumer.release(cons_core)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert received == list(range(count))

    def test_stats_bytes_counted(self):
        sim, cluster, channel = make_channel()
        prod_core = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.send(prod_core, "a", 100)
            yield from channel.producer.send(prod_core, "b", 200)

        sim.process(producer())
        sim.run()
        assert channel.stats.messages == 2
        assert channel.stats.payload_bytes == 300


class TestLocalChannel:
    def make(self, credits=4):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(nodes=1))
        channel = LocalChannel(sim, cluster.node(0), credits=credits, buffer_bytes=4096)
        return sim, cluster, channel

    def test_fifo_roundtrip(self):
        sim, cluster, channel = self.make()
        core_a = cluster.node(0).core(0)
        core_b = cluster.node(0).core(1)
        received = []

        def producer():
            for i in range(8):
                yield from channel.send(core_a, i, 64)
            yield from channel.close(core_a)

        def consumer():
            while True:
                payload, _ = yield from channel.recv(core_b)
                if payload is CHANNEL_EOS:
                    return
                received.append(payload)
                yield from channel.release(core_b)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert received == list(range(8))
        assert channel.eos

    def test_backpressure(self):
        sim, cluster, channel = self.make(credits=2)
        core = cluster.node(0).core(0)
        sent = []

        def producer():
            for i in range(5):
                yield from channel.send(core, i, 64)
                sent.append(i)

        sim.process(producer())
        sim.run(until=0.01)
        assert sent == [0, 1]

    def test_send_after_close_rejected(self):
        sim, cluster, channel = self.make()
        core = cluster.node(0).core(0)

        def producer():
            yield from channel.close(core)
            yield from channel.send(core, 1, 8)

        sim.process(producer())
        with pytest.raises(ProtocolError):
            sim.run()

    def test_copy_charges_memory_traffic(self):
        sim, cluster, channel = self.make()
        core = cluster.node(0).core(0)

        def producer():
            yield from channel.send(core, "x", 4096)

        sim.process(producer())
        sim.run()
        assert core.counters.mem_bytes >= 2 * 4096

    def test_mark_dead_drops_sends_silently(self):
        sim, cluster, channel = self.make()
        core = cluster.node(0).core(0)

        def producer():
            yield from channel.send(core, "a", 64)
            channel.mark_dead()
            yield from channel.send(core, "b", 64)
            yield from channel.close(core)

        sim.process(producer())
        sim.run()
        assert channel.dead
        ok, payload, _n = channel.try_recv(cluster.node(0).core(1))
        assert ok and payload == "a"
        assert not channel.try_recv(cluster.node(0).core(1))[0]

    def test_mark_dead_wakes_a_parked_sender(self):
        """A producer blocked on credits must not hang forever when its
        node dies: mark_dead injects a fake credit to unpark it."""
        sim, cluster, channel = self.make(credits=1)
        core = cluster.node(0).core(0)
        done = []

        def producer():
            yield from channel.send(core, "a", 64)
            # No consumer releases: this send parks on the credit store.
            yield from channel.send(core, "b", 64)
            done.append(True)

        proc = sim.process(producer())
        sim.process(self._kill_later(sim, channel))
        sim.run_until_process(proc)
        assert done == [True]

    @staticmethod
    def _kill_later(sim, channel):
        from repro.simnet.kernel import Timeout

        yield Timeout(1e-6)
        channel.mark_dead()
