"""ChunkBufferPool: reuse, lifecycle enforcement, and bounded parking."""

import pytest

from repro.channel import ChunkBufferPool
from repro.common.errors import ProtocolError


def test_acquire_release_reuses_buffer():
    pool = ChunkBufferPool(name="t")
    buf = pool.acquire()
    buf.extend([1, 2, 3])
    pool.release(buf)
    again = pool.acquire()
    assert again is buf
    assert again == []  # release cleared it
    assert pool.acquired == 2
    assert pool.released == 1
    assert pool.reused == 1


def test_double_release_raises_protocol_error():
    pool = ChunkBufferPool(name="exec0.chunk-pool")
    buf = pool.acquire()
    pool.release(buf)
    with pytest.raises(ProtocolError, match="double release"):
        pool.release(buf)


def test_release_after_reacquire_is_legal():
    # acquire → release → acquire (same object) → release must NOT trip
    # the double-release check: ownership transferred back to the caller.
    pool = ChunkBufferPool(name="t")
    buf = pool.acquire()
    pool.release(buf)
    assert pool.acquire() is buf
    pool.release(buf)
    assert pool.free == 1


def test_free_list_is_bounded():
    pool = ChunkBufferPool(name="t", max_free=2)
    bufs = [pool.acquire() for _ in range(5)]
    for buf in bufs:
        pool.release(buf)
    assert pool.free == 2
    assert pool.outstanding == 0


def test_outstanding_tracks_live_buffers():
    pool = ChunkBufferPool(name="t")
    a = pool.acquire()
    b = pool.acquire()
    assert pool.outstanding == 2
    pool.release(a)
    assert pool.outstanding == 1
    pool.release(b)
    assert pool.outstanding == 0
    assert pool.free == 2


def test_repr_mentions_name_and_counts():
    pool = ChunkBufferPool(name="mypool")
    pool.release(pool.acquire())
    text = repr(pool)
    assert "mypool" in text
    assert "acquired=1" in text
