"""Property tests: the channel protocol under randomized schedules.

Hypothesis drives the *shape* of a producer/consumer pair — message
count, credit depth, buffer size, message sizes, and how long the
consumer dawdles before releasing each buffer — and the invariants must
hold for every schedule: exact FIFO delivery, no loss, no duplication,
credits conserved, and the ring never holding more than ``credits``
unconsumed buffers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.channel import CHANNEL_EOS, RdmaChannel
from repro.common.config import ClusterConfig
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator, Timeout

schedules = st.fixed_dictionaries(
    {
        "credits": st.integers(1, 12),
        "buffer_bytes": st.sampled_from([1024, 4096, 65536]),
        "messages": st.integers(1, 40),
        "sizes": st.lists(st.integers(1, 900), min_size=1, max_size=10),
        "consumer_delays_us": st.lists(
            st.floats(0.0, 30.0), min_size=1, max_size=10
        ),
        "producer_delays_us": st.lists(
            st.floats(0.0, 10.0), min_size=1, max_size=10
        ),
    }
)


@settings(max_examples=40, deadline=None)
@given(schedule=schedules)
def test_property_fifo_no_loss_no_duplication(schedule):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=2))
    cm = ConnectionManager(cluster)
    channel = RdmaChannel.create(
        cm, 0, 1,
        credits=schedule["credits"],
        buffer_bytes=schedule["buffer_bytes"],
    )
    prod_core = cluster.node(0).core(0)
    cons_core = cluster.node(1).core(0)
    messages = schedule["messages"]
    sizes = schedule["sizes"]
    cdelays = schedule["consumer_delays_us"]
    pdelays = schedule["producer_delays_us"]
    received = []
    max_unreleased = [0]
    unreleased = [0]

    def producer():
        for i in range(messages):
            delay = pdelays[i % len(pdelays)] * 1e-6
            if delay:
                yield Timeout(delay)
            yield from channel.producer.send(
                prod_core, i, sizes[i % len(sizes)]
            )
        yield from channel.producer.close(prod_core)

    def consumer():
        while True:
            payload, _n = yield from channel.consumer.recv(cons_core)
            unreleased[0] += 1
            max_unreleased[0] = max(max_unreleased[0], unreleased[0])
            delay = cdelays[len(received) % len(cdelays)] * 1e-6
            if delay:
                yield Timeout(delay)
            yield from channel.consumer.release(cons_core)
            unreleased[0] -= 1
            if payload is CHANNEL_EOS:
                return
            received.append(payload)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run_until_process(proc)

    # Exact FIFO, no loss, no duplication.
    assert received == list(range(messages))
    # Never more unconsumed buffers than the ring has slots.
    assert max_unreleased[0] <= schedule["credits"]
    # Credits conserved: all returned by the end.
    assert channel.producer.flow.available + channel.producer.flow.outstanding == schedule["credits"]
    # Stats account for every payload byte exactly once (EOS is 0 bytes).
    expected_bytes = sum(sizes[i % len(sizes)] for i in range(messages))
    assert channel.stats.payload_bytes == expected_bytes
    assert channel.stats.messages == messages + 1  # + EOS


@settings(max_examples=15, deadline=None)
@given(
    seed_delays=st.lists(st.floats(0.0, 5.0), min_size=2, max_size=6),
    credits=st.integers(1, 8),
)
def test_property_simulation_is_deterministic(seed_delays, credits):
    """Same schedule twice -> bit-identical timing and counters."""

    def run_once():
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(nodes=2))
        cm = ConnectionManager(cluster)
        channel = RdmaChannel.create(cm, 0, 1, credits=credits, buffer_bytes=4096)
        core = cluster.node(0).core(0)
        cons = cluster.node(1).core(0)

        def producer():
            for i, delay in enumerate(seed_delays):
                yield Timeout(delay * 1e-6)
                yield from channel.producer.send(core, i, 256)
            yield from channel.producer.close(core)

        def consumer():
            while True:
                payload, _n = yield from channel.consumer.recv(cons)
                yield from channel.consumer.release(cons)
                if payload is CHANNEL_EOS:
                    return

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until_process(proc)
        return sim.now, core.counters.total_cycles, channel.stats.mean_latency_s

    assert run_once() == run_once()
