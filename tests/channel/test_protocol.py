"""Unit and property tests for credit-based flow control."""

import pytest
from hypothesis import given, strategies as st

from repro.channel.protocol import ChannelStats, FlowControl
from repro.common.errors import ProtocolError


def test_initial_balance():
    flow = FlowControl(8)
    assert flow.available == 8
    assert flow.outstanding == 0
    assert flow.can_send()


def test_spend_decrements():
    flow = FlowControl(2)
    flow.spend()
    assert flow.available == 1
    assert flow.outstanding == 1


def test_spend_at_zero_raises():
    flow = FlowControl(1)
    flow.spend()
    assert not flow.can_send()
    with pytest.raises(ProtocolError, match="zero credits"):
        flow.spend()


def test_refill_restores():
    flow = FlowControl(4)
    for _ in range(3):
        flow.spend()
    flow.refill(2)
    assert flow.available == 3


def test_refill_above_initial_raises():
    flow = FlowControl(4)
    with pytest.raises(ProtocolError, match="exceeds"):
        flow.refill(1)


def test_refill_nonpositive_raises():
    flow = FlowControl(4)
    flow.spend()
    with pytest.raises(ProtocolError):
        flow.refill(0)


def test_zero_credit_channel_rejected():
    with pytest.raises(ProtocolError):
        FlowControl(0)


@given(st.integers(min_value=1, max_value=64), st.lists(st.booleans(), max_size=200))
def test_property_balance_always_in_range(credits, ops):
    """Randomly interleaved spends/refills keep 0 <= available <= credits."""
    flow = FlowControl(credits)
    for is_spend in ops:
        if is_spend:
            if flow.can_send():
                flow.spend()
        else:
            if flow.outstanding > 0:
                flow.refill(1)
        assert 0 <= flow.available <= credits
        assert flow.available + flow.outstanding == credits


def test_stats_throughput():
    stats = ChannelStats()
    stats.record_send(1000)
    stats.record_send(1000)
    assert stats.messages == 2
    assert stats.throughput_bytes_per_s(2.0) == pytest.approx(1000)
    assert stats.throughput_bytes_per_s(0.0) == 0.0


def test_stats_latency_aggregates():
    stats = ChannelStats()
    for latency in (1e-6, 3e-6, 2e-6):
        stats.record_latency(latency)
    assert stats.mean_latency_s == pytest.approx(2e-6)
    assert stats.max_latency_s == pytest.approx(3e-6)
    assert len(stats.latencies) == 3


def test_stats_latency_list_capped():
    stats = ChannelStats()
    stats._latency_cap = 10
    for i in range(50):
        stats.record_latency(float(i))
    assert len(stats.latencies) == 10
    assert stats.mean_latency_s == pytest.approx(sum(range(50)) / 50)


def test_stats_stall_accounting():
    stats = ChannelStats()
    stats.record_stall(0.5)
    stats.record_stall(0.0)  # zero-length stalls are not counted
    assert stats.credit_stalls == 1
    assert stats.credit_stall_s == pytest.approx(0.5)
