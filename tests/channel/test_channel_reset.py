"""Channel reset semantics: EOS exactly-once and receiver interruption.

Regression tests for the fault-recovery path: a channel torn down and
re-established mid-stream must deliver the end-of-stream sentinel exactly
once, no matter which side of the reset the close landed on.
"""

import pytest

from repro.channel.channel import CHANNEL_EOS, RdmaChannel
from repro.common.config import ClusterConfig
from repro.common.errors import ChannelResetError
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import Simulator


def make_channel(credits=4, buffer_bytes=4096, nodes=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(nodes=nodes))
    cm = ConnectionManager(cluster)
    channel = RdmaChannel.create(cm, 0, 1, credits=credits, buffer_bytes=buffer_bytes)
    return sim, cluster, channel


def _drain(sim, cluster, channel, expect):
    """Receive until EOS (or ``expect`` payloads), returning payloads seen."""
    core = cluster.node(1).core(0)
    received = []

    def consumer():
        while len(received) < expect:
            payload, _nbytes = yield from channel.consumer.recv(core)
            received.append(payload)
            yield from channel.consumer.release(core)
            if payload is CHANNEL_EOS:
                return

    proc = sim.process(consumer())
    sim.run_until_process(proc)
    return received


class TestEosExactlyOnceAcrossReset:
    def test_close_after_consumed_eos_is_not_resent(self):
        # EOS reached the consumer *before* the reset: the reset must not
        # re-arm the producer, and a second close must be a no-op.
        sim, cluster, channel = make_channel()
        sender = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.send(sender, "data", 256)
            yield from channel.producer.close(sender)

        sim.process(producer())
        sim.run()
        got = _drain(sim, cluster, channel, expect=2)
        assert got == ["data", CHANNEL_EOS]
        assert channel.consumer.eos

        channel.reset()
        assert channel.producer.closed  # reset did NOT re-arm

        def close_again():
            yield from channel.producer.close(sender)

        proc = sim.process(close_again())
        sim.run_until_process(proc)
        # No second sentinel materialised on the fresh channel.
        assert channel.consumer.pending == 0

    def test_close_racing_reset_delivers_eos_exactly_once(self):
        # The producer closed, but the sentinel died in the torn-down
        # ring before the consumer saw it.  The reset re-arms the
        # producer so the normal close path re-sends EOS — exactly once.
        sim, cluster, channel = make_channel()
        sender = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.close(sender)

        sim.process(producer())
        sim.run()
        assert channel.producer.closed
        assert not channel.consumer.eos  # EOS undelivered: still in the ring

        channel.reset()
        assert not channel.producer.closed  # re-armed

        def close_again():
            yield from channel.producer.close(sender)

        sim.process(close_again())
        sim.run()
        got = _drain(sim, cluster, channel, expect=1)
        assert got == [CHANNEL_EOS]
        assert channel.consumer.eos
        assert channel.consumer.pending == 0  # exactly one sentinel

    def test_double_reset_is_stable(self):
        sim, cluster, channel = make_channel()
        sender = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.close(sender)

        sim.process(producer())
        sim.run()
        channel.reset()
        channel.reset()  # idempotent: still exactly one re-arm
        assert not channel.producer.closed

        def close_again():
            yield from channel.producer.close(sender)

        sim.process(close_again())
        sim.run()
        assert _drain(sim, cluster, channel, expect=1) == [CHANNEL_EOS]


class TestForceReset:
    def test_blocked_receiver_raises_channel_reset(self):
        sim, cluster, channel = make_channel()
        receiver = cluster.node(1).core(0)
        outcome = {}

        def consumer():
            try:
                yield from channel.consumer.recv(receiver)
            except ChannelResetError:
                outcome["reset"] = True

        proc = sim.process(consumer())
        channel.consumer.force_reset()
        sim.run_until_process(proc)
        assert outcome.get("reset")

    def test_arrivals_ahead_of_reset_token_still_delivered(self):
        sim, cluster, channel = make_channel()
        sender = cluster.node(0).core(0)
        receiver = cluster.node(1).core(0)
        received = []
        outcome = {}

        def producer():
            yield from channel.producer.send(sender, "early", 128)

        sim.process(producer())
        sim.run()
        channel.consumer.force_reset()

        def consumer():
            payload, _ = yield from channel.consumer.recv(receiver)
            received.append(payload)
            yield from channel.consumer.release(receiver)
            try:
                yield from channel.consumer.recv(receiver)
            except ChannelResetError:
                outcome["reset"] = True

        proc = sim.process(consumer())
        sim.run_until_process(proc)
        assert received == ["early"]
        assert outcome.get("reset")

    def test_reset_endpoint_preserves_eos_flag(self):
        sim, cluster, channel = make_channel()
        sender = cluster.node(0).core(0)

        def producer():
            yield from channel.producer.close(sender)

        sim.process(producer())
        sim.run()
        _drain(sim, cluster, channel, expect=1)
        assert channel.consumer.eos
        channel.consumer.reset_endpoint()
        assert channel.consumer.eos  # survives: EOS must stay exactly-once
