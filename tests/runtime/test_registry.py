"""Engine registry: lookup, suggestions, and capability gating."""

import pytest

from repro.common.errors import CapabilityError, ConfigError
from repro.core.engine import SlashEngine
from repro.faults.plan import FaultPlan
from repro.runtime import (
    BENCH_EPOCH_BYTES,
    CAP_FAULT_INJECTION,
    CAP_SANITIZE,
    CAP_SCALE_OUT,
    CAP_TRANSFER_BENCH,
    EngineRegistry,
    EngineSpec,
    REGISTRY,
)


def test_registry_names_cover_all_engines():
    assert REGISTRY.names() == ("flink", "uppar", "slash", "lightsaber", "reference")


def test_unknown_engine_raises_with_suggestion():
    with pytest.raises(ConfigError, match=r"did you mean 'slash'\?"):
        REGISTRY.spec("slsh")


def test_unknown_engine_lists_known_names():
    with pytest.raises(ConfigError, match="known: flink, uppar, slash"):
        REGISTRY.create("spark", nodes=2)


def test_create_slash_uses_bench_epoch_default():
    engine = REGISTRY.create("slash", nodes=2)
    assert isinstance(engine, SlashEngine)
    assert engine.epoch_bytes == BENCH_EPOCH_BYTES


def test_capability_flags_per_engine():
    assert CAP_SCALE_OUT in REGISTRY.spec("uppar").capabilities
    assert CAP_SCALE_OUT not in REGISTRY.spec("lightsaber").capabilities
    assert CAP_FAULT_INJECTION in REGISTRY.spec("slash").capabilities
    assert CAP_FAULT_INJECTION in REGISTRY.spec("flink").capabilities
    assert CAP_FAULT_INJECTION not in REGISTRY.spec("lightsaber").capabilities


def test_require_missing_capability_fails_fast():
    """Asking LightSaber for fault injection is a capability error raised
    before any simulation starts, not a mid-run crash."""
    with pytest.raises(CapabilityError, match="lightsaber"):
        REGISTRY.require("lightsaber", CAP_FAULT_INJECTION)
    # Satisfied requirements return the spec.
    assert REGISTRY.require("lightsaber", CAP_SANITIZE).name == "lightsaber"


def test_attach_faults_rejected_without_capability():
    plan = FaultPlan.preset("nic-flap", seed=7, executors=2, horizon_s=1.0)
    with pytest.raises(CapabilityError, match="fault injection"):
        REGISTRY.create("lightsaber").attach_faults(plan)


def test_attach_faults_rejects_unsupported_kinds():
    """Flink has a fault plane but no crash recovery: a node-crash plan
    must be refused at attach time with the supported kinds listed."""
    plan = FaultPlan.preset("leader-crash", seed=7, executors=3, horizon_s=1.0)
    with pytest.raises(CapabilityError, match="node-crash"):
        REGISTRY.create("flink", nodes=3).attach_faults(plan)


def test_transfer_bench_gated_by_capability():
    assert CAP_TRANSFER_BENCH not in REGISTRY.spec("flink").capabilities
    with pytest.raises(CapabilityError):
        REGISTRY.transfer_bench("flink", threads=2)
    bench = REGISTRY.transfer_bench("slash", threads=2, buffer_bytes=16384)
    assert type(bench).__name__ == "SlashTransferBench"


def test_duplicate_registration_rejected():
    registry = EngineRegistry()
    spec = EngineSpec(name="x", factory=lambda nodes, **kw: None,
                      capabilities=frozenset(), description="test")
    registry.register(spec)
    with pytest.raises(ConfigError, match="registered twice"):
        registry.register(spec)
