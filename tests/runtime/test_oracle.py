"""The unified result differ shared by experiments, sanitizer, and chaos."""

from repro.runtime import REGISTRY, Scenario, diff_aggregates, diff_results, run_scenario


def test_diff_aggregates_exact_for_ints():
    missing, extra, mismatched = diff_aggregates(
        {("w", 1): 10, ("w", 2): 5}, {("w", 1): 10, ("w", 2): 6}
    )
    assert (missing, extra) == ([], [])
    assert mismatched == [("w", 2)]


def test_diff_aggregates_tolerates_float_ulp_drift():
    want = 0.1 + 0.2
    got = 0.2 + 0.1 + 1e-15
    _missing, _extra, mismatched = diff_aggregates({("w", 1): want}, {("w", 1): got})
    assert mismatched == []


def test_diff_aggregates_missing_and_extra():
    missing, extra, _ = diff_aggregates({("a",): 1}, {("b",): 1})
    assert missing == [("a",)]
    assert extra == [("b",)]


def test_diff_results_aggregate_describe():
    class Fake:
        aggregates = {("w", 1): 1}
        def sorted_join_pairs(self):
            return []

    class Empty:
        aggregates = {}
        def sorted_join_pairs(self):
            return []

    diff = diff_results(Fake(), Empty())
    assert not diff.ok
    assert "1 missing, 0 extra, 0 mismatched" in diff.describe()


def test_diff_results_engine_vs_reference_oracle():
    overrides = {"records_per_thread": 300, "batch_records": 100}
    spec = Scenario(engine="slash", workload="nb8", nodes=2, threads=2,
                    workload_overrides=dict(overrides))
    result = run_scenario(spec)
    workload_spec = Scenario(engine="reference", workload="nb8", nodes=2,
                             threads=2, workload_overrides=dict(overrides))
    oracle = run_scenario(workload_spec)
    diff = diff_results(oracle, result)
    assert diff.kind == "join_pairs"
    assert diff.ok
    assert diff.describe() == ""
