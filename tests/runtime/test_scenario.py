"""Declarative scenarios: determinism, equivalence, and generic hooks."""

import pytest

from repro.common.errors import CapabilityError, ConfigError
from repro.faults.plan import FaultPlan
from repro.runtime import (
    Scenario,
    WORKLOADS,
    make_workload,
    resolve_strategy,
    run_scenario,
)

SMALL = {"records_per_thread": 400, "batch_records": 100}


def test_unknown_workload_raises_with_suggestion():
    with pytest.raises(ConfigError, match=r"did you mean 'ysb'\?"):
        make_workload("ysbb")


def test_unknown_strategy_raises():
    with pytest.raises(ConfigError, match="unknown cost strategy"):
        resolve_strategy("jit")


def test_workload_registry_covers_paper_workloads():
    assert set(WORKLOADS) == {
        "ysb", "cm", "nb7", "nb8", "nb11", "ro", "sessions",
    }


def test_scenario_params_roundtrip():
    spec = Scenario(engine="uppar", workload="cm", nodes=3, threads=2,
                    workload_overrides=dict(SMALL), seed=11, sanitize=True)
    assert Scenario(**spec.params()) == spec


def test_run_scenario_deterministic_for_pinned_seed():
    spec = Scenario(engine="slash", workload="ysb", nodes=2, threads=2,
                    workload_overrides=dict(SMALL), seed=1234)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.aggregates == second.aggregates
    assert first.sim_seconds == second.sim_seconds
    assert first.emitted == second.emitted


def test_run_scenario_seed_changes_workload():
    base = Scenario(engine="slash", workload="ysb", nodes=2, threads=2,
                    workload_overrides=dict(SMALL), seed=1)
    other = Scenario(engine="slash", workload="ysb", nodes=2, threads=2,
                     workload_overrides=dict(SMALL), seed=2)
    assert run_scenario(base).aggregates != run_scenario(other).aggregates


def test_run_scenario_matches_direct_harness_path():
    from repro.harness.runner import run_end_to_end

    spec = Scenario(engine="uppar", workload="ysb", nodes=2, threads=2,
                    workload_overrides=dict(SMALL))
    via_scenario = run_scenario(spec)
    direct = run_end_to_end("uppar", "ysb", 2, 2, workload_overrides=dict(SMALL))
    assert via_scenario.sim_seconds == direct.sim_seconds
    assert via_scenario.aggregates == direct.result.aggregates


def test_sanitize_hook_works_on_uppar():
    spec = Scenario(engine="uppar", workload="ysb", nodes=2, threads=2,
                    workload_overrides=dict(SMALL), sanitize=True)
    result = run_scenario(spec)
    checks = result.extra["sanitizer_checks"]
    assert sum(checks.values()) > 0


def test_fault_injection_on_lightsaber_fails_fast():
    """The capability error must fire before any simulation runs."""
    plan = FaultPlan.preset("nic-flap", seed=7, executors=2, horizon_s=1.0)
    spec = Scenario(engine="lightsaber", workload="ysb",
                    workload_overrides=dict(SMALL), fault_plan=plan)
    with pytest.raises(CapabilityError, match="fault injection"):
        run_scenario(spec)


def test_fault_hook_works_on_uppar():
    baseline = Scenario(engine="uppar", workload="ysb", nodes=2, threads=2,
                        workload_overrides=dict(SMALL))
    clean = run_scenario(baseline)
    plan = FaultPlan.preset("drop-chunk", seed=7, executors=2,
                            horizon_s=clean.sim_seconds)
    faulted = run_scenario(
        Scenario(engine="uppar", workload="ysb", nodes=2, threads=2,
                 workload_overrides=dict(SMALL), fault_plan=plan,
                 fault_overrides={"rto_s": max(5e-6, clean.sim_seconds * 0.001)})
    )
    # Dropped WRITEs must be retransmitted: zero lost results.
    assert faulted.aggregates == clean.aggregates
    assert faulted.extra["faults"]["writes_dropped"] > 0


def test_strategy_slows_down_interpreted():
    compiled = run_scenario(
        Scenario(engine="slash", workload="ysb", nodes=2, threads=2,
                 workload_overrides=dict(SMALL), strategy="compiled")
    )
    interpreted = run_scenario(
        Scenario(engine="slash", workload="ysb", nodes=2, threads=2,
                 workload_overrides=dict(SMALL), strategy="interpreted")
    )
    assert interpreted.sim_seconds > compiled.sim_seconds
    assert interpreted.aggregates == compiled.aggregates
