"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet.kernel import AllOf, Signal, Simulator, Timeout


def test_timeout_advances_time():
    sim = Simulator()

    def body():
        yield Timeout(1.5)
        return sim.now

    proc = sim.process(body())
    assert sim.run_until_process(proc) == pytest.approx(1.5)


def test_timeout_rejects_negative():
    with pytest.raises(SimulationError):
        Timeout(-1)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    times = []

    def body():
        for _ in range(3):
            yield Timeout(0.25)
            times.append(sim.now)

    sim.process(body())
    sim.run()
    assert times == pytest.approx([0.25, 0.5, 0.75])


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []

    def make(tag):
        def body():
            yield Timeout(1.0)
            order.append(tag)

        return body

    for tag in "abc":
        sim.process(make(tag)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield Timeout(1)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_until_process(sim.process(parent())) == 100


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()

    def child():
        yield Timeout(0.5)
        return "done"

    def parent(proc):
        yield Timeout(2.0)
        value = yield proc
        return sim.now, value

    child_proc = sim.process(child())
    when, value = sim.run_until_process(sim.process(parent(child_proc)))
    assert value == "done"
    assert when == pytest.approx(2.0)


def test_exception_in_child_reraised_in_parent():
    sim = Simulator()

    def child():
        yield Timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return str(exc)

    assert sim.run_until_process(sim.process(parent())) == "boom"


def test_unobserved_failure_surfaces_in_run():
    sim = Simulator()

    def body():
        yield Timeout(1)
        raise RuntimeError("silent death")

    sim.process(body())
    with pytest.raises(RuntimeError, match="silent death"):
        sim.run()


def test_signal_wakes_waiter_with_value():
    sim = Simulator()

    def waiter(sig):
        value = yield sig
        return value, sim.now

    def firer(sig):
        yield Timeout(3)
        sig.fire("hello")

    sig = Signal()
    proc = sim.process(waiter(sig))
    sim.process(firer(sig))
    assert sim.run_until_process(proc) == ("hello", 3)


def test_signal_fire_twice_raises():
    sig = Signal()
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_wait_on_already_fired_signal():
    sim = Simulator()
    sig = Signal()
    sig.fire(7)

    def body():
        value = yield sig
        return value

    assert sim.run_until_process(sim.process(body())) == 7


def test_signal_fail_raises_in_waiter():
    sim = Simulator()
    sig = Signal()

    def waiter():
        with pytest.raises(KeyError):
            yield sig
        return True

    def failer():
        yield Timeout(1)
        sig.fail(KeyError("nope"))

    proc = sim.process(waiter())
    sim.process(failer())
    assert sim.run_until_process(proc) is True


def test_allof_waits_for_slowest():
    sim = Simulator()

    def body():
        values = yield AllOf([Timeout(1, "a"), Timeout(5, "b"), Timeout(3, "c")])
        return sim.now, values

    when, values = sim.run_until_process(sim.process(body()))
    assert when == pytest.approx(5)
    assert values == ["a", "b", "c"]


def test_allof_empty_fires_immediately():
    sim = Simulator()

    def body():
        values = yield AllOf([])
        return sim.now, values

    assert sim.run_until_process(sim.process(body())) == (0.0, [])


def test_yield_non_waitable_raises():
    sim = Simulator()

    def body():
        yield 42

    sim.process(body())
    with pytest.raises(SimulationError, match="expected a Waitable"):
        sim.run()


def test_run_until_stops_at_limit():
    sim = Simulator()

    def body():
        while True:
            yield Timeout(1)

    sim.process(body())
    assert sim.run(until=10.5) == pytest.approx(10.5)
    assert sim.now == pytest.approx(10.5)


def test_run_until_process_detects_deadlock():
    sim = Simulator()
    sig = Signal()  # never fired

    def body():
        yield sig

    proc = sim.process(body())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_process(proc)


def test_process_value_before_completion_raises():
    sim = Simulator()

    def body():
        yield Timeout(1)

    proc = sim.process(body())
    with pytest.raises(SimulationError):
        _ = proc.value


def test_non_generator_body_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError, match="generator"):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_resource_serializes_fifo():
    sim = Simulator()
    res = sim.resource(capacity=1, name="r")
    order = []

    def worker(tag, hold):
        yield res.acquire()
        order.append(("start", tag, sim.now))
        yield Timeout(hold)
        order.append(("end", tag, sim.now))
        res.release()

    sim.process(worker("a", 2))
    sim.process(worker("b", 1))
    sim.run()
    assert order == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = sim.resource(capacity=2)
    ends = []

    def worker():
        yield res.acquire()
        yield Timeout(1)
        res.release()
        ends.append(sim.now)

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert ends == pytest.approx([1.0, 1.0, 2.0])


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = sim.resource()
    with pytest.raises(SimulationError):
        res.release()


def test_store_fifo_and_blocking():
    sim = Simulator()
    store = sim.store()
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, sim.now))

    def producer():
        store.put("x")
        yield Timeout(2)
        store.put("y")
        store.put("z")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 0.0), ("y", 2.0), ("z", 2.0)]


def test_store_try_get():
    sim = Simulator()
    store = sim.store()
    assert store.try_get() == (False, None)
    store.put(1)
    assert store.try_get() == (True, 1)
    assert len(store) == 0


def test_call_in_past_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.1, lambda: None)
