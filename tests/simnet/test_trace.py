"""Tests for the event tracer and its instrumentation hooks."""

import pytest

from repro.common.errors import ConfigError
from repro.core.engine import SlashEngine
from repro.simnet.trace import Tracer, TraceEvent, trace
from repro.workloads.ysb import YsbWorkload


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, "epoch", "boundary", epoch=3)
        tracer.emit(2.0, "window", "fired")
        assert len(tracer) == 2
        assert [e.label for e in tracer.events("epoch")] == ["boundary"]
        assert tracer.events()[0].data == {"epoch": 3}

    def test_category_filter(self):
        tracer = Tracer(categories={"window"})
        tracer.emit(1.0, "epoch", "skip me")
        tracer.emit(2.0, "window", "keep me")
        assert [e.label for e in tracer.events()] == ["keep me"]
        assert tracer.wants("window") and not tracer.wants("epoch")

    def test_capacity_bounds_and_drop_count(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(float(i), "custom", f"e{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.events()[0].label == "e2"

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            Tracer(capacity=0)

    def test_render_timeline(self):
        tracer = Tracer()
        tracer.emit(1e-6, "epoch", "boundary", deltas=2)
        rendered = tracer.render_timeline()
        assert "boundary" in rendered and "deltas=2" in rendered
        assert "1 events" in rendered

    def test_clear(self):
        tracer = Tracer(capacity=1)
        tracer.emit(0.0, "custom", "a")
        tracer.emit(0.0, "custom", "b")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_trace_helper_noop_without_tracer(self):
        class FakeSim:
            now = 1.0

        trace(FakeSim(), "custom", "nothing happens")  # must not raise

    def test_event_render(self):
        event = TraceEvent(2e-6, "window", "fired", {"keys": 4})
        assert "fired" in event.render() and "keys=4" in event.render()


class TestEngineInstrumentation:
    def test_slash_run_emits_epoch_merge_window_events(self):
        """Attach a tracer through a real distributed run."""
        workload = YsbWorkload(records_per_thread=800, key_range=100, batch_records=200)
        flows = workload.flows(2, 2)
        engine = SlashEngine(epoch_bytes=16 * 1024)

        captured = {}
        original_run = engine.run

        # Attach the tracer by wrapping the simulator construction: easiest
        # honest route is running the engine and attaching via a small
        # subclass hook — here we reach through the module seam instead.
        import repro.core.engine as engine_module

        original_simulator = engine_module.Simulator

        def traced_simulator():
            sim = original_simulator()
            sim.tracer = Tracer()
            captured["tracer"] = sim.tracer
            return sim

        engine_module.Simulator = traced_simulator
        try:
            engine.run(workload.build_query(), flows)
        finally:
            engine_module.Simulator = original_simulator

        tracer = captured["tracer"]
        categories = {event.category for event in tracer.events()}
        assert {"epoch", "merge", "window", "channel"} <= categories
        # Epoch boundaries carry their delta counts.
        epoch_events = tracer.events("epoch")
        assert any(event.data.get("final") for event in epoch_events)
        # Windows fired with keys attached.
        assert all(event.data["keys"] > 0 for event in tracer.events("window"))
