"""Edge-case tests for the simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet.kernel import AllOf, Signal, Simulator, Timeout


def test_allof_propagates_child_failure():
    sim = Simulator()
    good = Signal()
    bad = Signal()

    def body():
        with pytest.raises(ValueError):
            yield AllOf([good, bad])
        return "handled"

    def driver():
        yield Timeout(1)
        good.fire(1)
        bad.fail(ValueError("child failed"))

    proc = sim.process(body())
    sim.process(driver())
    assert sim.run_until_process(proc) == "handled"


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield Timeout(1)
        return 1

    def middle():
        value = yield sim.process(leaf())
        yield Timeout(1)
        return value + 1

    def root():
        value = yield sim.process(middle())
        return value + 1

    assert sim.run_until_process(sim.process(root())) == 3
    assert sim.now == pytest.approx(2)


def test_many_waiters_on_one_signal_fifo():
    sim = Simulator()
    sig = Signal()
    order = []

    def waiter(tag):
        yield sig
        order.append(tag)

    for tag in range(5):
        sim.process(waiter(tag))

    def firer():
        yield Timeout(1)
        sig.fire()

    sim.process(firer())
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_immediate_return():
    sim = Simulator()

    def body():
        return 5
        yield  # pragma: no cover

    assert sim.run_until_process(sim.process(body())) == 5
    assert sim.now == 0.0


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []

    def a():
        yield Timeout(0)
        order.append("a")

    def b():
        yield Timeout(0)
        order.append("b")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["a", "b"]


def test_store_many_getters_served_fifo():
    sim = Simulator()
    store = sim.store()
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in range(3):
        sim.process(getter(tag))

    def producer():
        yield Timeout(1)
        for item in "xyz":
            store.put(item)

    sim.process(producer())
    sim.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


def test_run_on_empty_heap_returns_immediately():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.run(until=100) == 0.0


def test_exception_inside_callback_does_not_corrupt_clock():
    sim = Simulator()

    def bad():
        yield Timeout(1)
        raise RuntimeError("boom")

    def good():
        yield Timeout(2)
        return sim.now

    sim.process(bad())
    proc = sim.process(good())
    with pytest.raises(RuntimeError):
        sim.run()
    # The failure stopped run(), but the sim can be resumed.
    assert sim.run_until_process(proc) == pytest.approx(2)
