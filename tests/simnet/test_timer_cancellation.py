"""Timer cancellation: FirstOf losers leave the queue instead of lingering.

The historical behaviour let every lost race (an RTO timer beaten by its
ACK, a credit timeout beaten by a credit) stay scheduled until its
deadline, firing into a no-op — so an RTO-heavy run dragged a tail of
dead timers through every queue operation.  With cancellation tokens the
loser is removed from the calendar queue the moment the winner fires.
"""

import pytest

from repro.common.errors import SimulationError
from repro.simnet.kernel import FirstOf, Signal, Simulator, Timeout


def test_firstof_cancels_losing_timer():
    sim = Simulator()
    results = []

    def body():
        ack = Signal(name="ack")
        sim.call_in(0.1, ack.fire, "acked")
        result = yield FirstOf([ack, Timeout(5.0)])
        results.append(result)
        # The losing 5s RTO timer must be gone *now*, not at t=5.
        assert sim.pending_timers == 0
        assert sim.cancelled_events == 1

    sim.process(body())
    final = sim.run()
    assert results == [(0, "acked")]
    # No dead timer held the clock back to its deadline either.
    assert final == pytest.approx(0.1)


def test_firstof_cancels_losing_signal_subscription():
    sim = Simulator()

    def body():
        lost = Signal(name="never")
        result = yield FirstOf([Timeout(0.5, "timer"), lost])
        assert result == (0, "timer")
        # The loser's waiter-list subscription was dropped: firing the
        # signal later reaches only real waiters.
        assert lost._waiters == []

    sim.process(body())
    sim.run()


def test_rto_heavy_run_does_not_grow_queue():
    """The satellite assertion: an RTO-heavy workload — every send races
    a retransmission timer that loses to the ACK — keeps the timer queue
    flat instead of accumulating one doomed timer per send."""
    sim = Simulator()
    rounds = 500
    rto_s = 1.0  # long RTO vs. 1ms ACKs: uncancelled timers would pile up
    high_water = []

    def sender():
        for _ in range(rounds):
            ack = Signal(name="ack")
            sim.call_in(0.001, ack.fire, None)
            index, _value = yield FirstOf([ack, Timeout(rto_s)])
            assert index == 0  # the ACK always wins
            high_water.append(sim.pending_timers)

    sim.process(sender())
    sim.run()
    assert sim.cancelled_events == rounds
    # Flat residency: never more than the single in-flight round's timer
    # (already cancelled by the time we sample), and empty at the end.
    assert max(high_water) == 0
    assert sim.pending_timers == 0
    # Without cancellation the run would have ended at the last timer's
    # deadline; with it, the clock stops at the last ACK.
    assert sim.now == pytest.approx(rounds * 0.001)


def test_cancelled_timer_never_fires_callback():
    sim = Simulator()
    fired = []

    handle = Timeout(1.0, "late")._subscribe_cancellable(
        sim, lambda value, exc: fired.append(value)
    )
    sim.call_in(2.0, fired.append, "end")
    assert sim.pending_timers == 2
    assert handle.cancel() is True
    assert handle.cancel() is False  # idempotent
    assert sim.pending_timers == 1
    sim.run()
    assert fired == ["end"]


def test_cancel_after_fire_is_refused():
    sim = Simulator()
    fired = []
    handle = Timeout(0.5)._subscribe_cancellable(
        sim, lambda value, exc: fired.append("timer")
    )
    sim.run()
    assert fired == ["timer"]
    assert handle.cancel() is False
    assert sim.cancelled_events == 0


def test_cancellation_preserves_sibling_bucket_entries():
    """Cancelling one entry of a shared-timestamp bucket leaves its
    siblings firing in seq order (and the stale-time bookkeeping sound)."""
    sim = Simulator()
    order = []
    keep_a = Timeout(1.0, "a")._subscribe_cancellable(
        sim, lambda v, e: order.append(v)
    )
    doomed = Timeout(1.0, "b")._subscribe_cancellable(
        sim, lambda v, e: order.append(v)
    )
    Timeout(1.0, "c")._subscribe_cancellable(sim, lambda v, e: order.append(v))
    Timeout(2.0, "d")._subscribe_cancellable(sim, lambda v, e: order.append(v))
    assert doomed.cancel() is True
    assert keep_a is not None
    sim.run()
    assert order == ["a", "c", "d"]
    assert sim.now == pytest.approx(2.0)


def test_cancelling_whole_head_bucket_promotes_next_time():
    sim = Simulator()
    order = []
    first = Timeout(1.0, "head")._subscribe_cancellable(
        sim, lambda v, e: order.append(v)
    )
    Timeout(3.0, "later")._subscribe_cancellable(sim, lambda v, e: order.append(v))
    assert first.cancel() is True
    # The 3.0 bucket must have been promoted to the front cache.
    assert sim.pending_timers == 1
    sim.run()
    assert order == ["later"]
    assert sim.now == pytest.approx(3.0)


def test_chaos_drop_chunk_run_keeps_timer_queue_flat():
    """End-to-end: a DROP_CHUNK chaos run (every reliable send races an
    RTO timer; drops force real retransmissions) must cancel its lost
    timers and drain with an empty calendar queue."""
    from repro.faults.plan import FaultPlan
    from repro.harness.runner import build_engine, make_workload

    nodes = 3
    workload = make_workload("ysb", records_per_thread=400, batch_records=100)
    baseline = build_engine("slash", nodes).run(
        workload.build_query(), workload.flows(nodes, 2)
    )
    horizon = baseline.sim_seconds
    plan = FaultPlan.preset("drop-chunk", 7, nodes, horizon)
    workload = make_workload("ysb", records_per_thread=400, batch_records=100)
    engine = build_engine(
        "slash", nodes, fault_plan=plan,
        fault_overrides=dict(rto_s=max(5e-6, horizon * 0.001)),
    )
    faulted = engine.run(workload.build_query(), workload.flows(nodes, 2))
    stats = faulted.extra["kernel_queue"]
    # Races happened and their losers were dropped early...
    assert stats["cancelled_events"] > 0
    # ...so the drained simulator holds no dead weight.
    assert stats["pending_timers_at_drain"] == 0
    assert stats["cancelled_events"] < stats["scheduled_events"]


def test_negative_timeout_still_rejected():
    with pytest.raises(SimulationError, match="negative delay"):
        Timeout(-0.5)
