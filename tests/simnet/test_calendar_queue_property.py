"""Property test: the calendar queue pops identically to a plain heap.

A reference discrete-event scheduler — one ``heapq`` of ``(when, seq)``
entries with set-based cancellation — replays the exact same randomized
script as the production :class:`Simulator`: timers scheduled up front
with heavy same-timestamp ties, timers spawned from inside callbacks
(landing in existing buckets, new buckets, and the current instant), and
cancellations fired mid-run against head-bucket and overflow entries.
The fire order must match event for event.

Scripted cancellations only ever target strictly-later timestamps: an
entry in the *currently dispatching* bucket is intentionally immune to
removal (the kernel returns False and relies on the subscriber's done
guard), so same-instant cancels are exercised separately in
test_timer_cancellation.py rather than fed to the blind reference.
"""

import heapq

from repro.simnet.kernel import Simulator, Timeout

#: Few distinct delays across many timers → most buckets hold ties.
DELAY_CHOICES = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
SPAWN_DELAYS = (0.0, 0.25, 0.5, 1.25)
N_INITIAL = 150
TRIALS = 5


def _build_script(rng):
    """A schedule the reference and the real kernel both replay.

    Returns ``(delays, actions)`` where ``actions[i]`` runs when initial
    timer ``i`` fires: ``("cancel", j)`` cancels initial timer ``j``
    (always with ``delays[j] > delays[i]``) and ``("spawn", d)``
    schedules a fresh timer ``d`` seconds out.
    """
    delays = [float(d) for d in rng.choice(DELAY_CHOICES, size=N_INITIAL)]
    actions = {}
    for i in range(N_INITIAL):
        acts = []
        if rng.random() < 0.35:
            later = [j for j in range(N_INITIAL) if delays[j] > delays[i]]
            if later:
                acts.append(("cancel", int(rng.choice(later))))
        if rng.random() < 0.3:
            acts.append(("spawn", float(rng.choice(SPAWN_DELAYS))))
        if acts:
            actions[i] = acts
    return delays, actions


def _run_reference(delays, actions):
    """Plain-heap oracle: lazy cancellation, (when, seq) tie-break."""
    heap = []
    seq = 0
    for i, delay in enumerate(delays):
        heapq.heappush(heap, (delay, seq, i))
        seq += 1
    cancelled = set()
    order = []
    next_label = len(delays)
    cancels_applied = 0
    while heap:
        when, _seq, label = heapq.heappop(heap)
        if label in cancelled:
            continue
        order.append(label)
        for act in actions.get(label, ()):
            if act[0] == "cancel":
                if act[1] not in cancelled:
                    cancelled.add(act[1])
                    cancels_applied += 1
            else:
                seq += 1
                heapq.heappush(heap, (when + act[1], seq, next_label))
                next_label += 1
    return order, cancels_applied


def _run_kernel(delays, actions):
    """The same script against the production calendar queue."""
    sim = Simulator()
    handles = {}
    order = []
    spawn_label = [len(delays)]

    def fired(label):
        def callback(value, exc):
            order.append(label)
            for act in actions.get(label, ()):
                if act[0] == "cancel":
                    handles[act[1]].cancel()
                else:
                    new = spawn_label[0]
                    spawn_label[0] += 1
                    Timeout(act[1])._subscribe_cancellable(sim, fired(new))
        return callback

    for i, delay in enumerate(delays):
        handles[i] = Timeout(delay)._subscribe_cancellable(sim, fired(i))
    sim.run()
    assert sim.pending_timers == 0
    return order, sim.cancelled_events


def test_calendar_queue_matches_heap_reference(rng):
    for trial in range(TRIALS):
        delays, actions = _build_script(rng)
        expected, expected_cancels = _run_reference(delays, actions)
        actual, actual_cancels = _run_kernel(delays, actions)
        assert actual == expected, f"trial {trial}: pop order diverged"
        assert actual_cancels == expected_cancels, f"trial {trial}"


def test_calendar_queue_matches_heap_under_pure_ties(rng):
    """Degenerate mix: every timer lands in one of two buckets."""
    sim = Simulator()
    order = []
    n = 200
    delays = [float(d) for d in rng.choice((1.0, 2.0), size=n)]
    for i, delay in enumerate(delays):
        Timeout(delay)._subscribe_cancellable(
            sim, lambda v, e, i=i: order.append(i)
        )
    sim.run()
    expected = sorted(range(n), key=lambda i: (delays[i], i))
    assert order == expected


def test_calendar_queue_matches_heap_under_sparse_times(rng):
    """Opposite mix: every timestamp distinct, pure overflow-heap churn."""
    sim = Simulator()
    order = []
    delays = sorted(
        float(d) for d in rng.uniform(0.001, 10.0, size=120)
    )
    rng.shuffle(delays)
    for i, delay in enumerate(delays):
        Timeout(delay)._subscribe_cancellable(
            sim, lambda v, e, i=i: order.append(i)
        )
    sim.run()
    expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert order == expected
