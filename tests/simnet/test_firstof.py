"""Unit tests for the FirstOf race primitive."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet.kernel import FirstOf, Signal, Simulator, Timeout


def test_firstof_returns_index_and_value_of_winner():
    sim = Simulator()

    def body():
        result = yield FirstOf([Timeout(2.0, "slow"), Timeout(0.5, "fast")])
        return result

    proc = sim.process(body())
    assert sim.run_until_process(proc) == (1, "fast")
    assert sim.now == pytest.approx(0.5)


def test_firstof_signal_beats_timeout():
    sim = Simulator()
    signal = Signal(sim)

    def firer():
        yield Timeout(0.1)
        signal.fire("payload")

    def waiter():
        index, value = yield FirstOf([signal, Timeout(5.0)])
        return index, value

    sim.process(firer())
    proc = sim.process(waiter())
    assert sim.run_until_process(proc) == (0, "payload")


def test_firstof_loser_does_not_retrigger_waiter():
    sim = Simulator()
    wakeups = []

    def body():
        result = yield FirstOf([Timeout(1.0, "a"), Timeout(1.5, "b")])
        wakeups.append(result)
        # Stay alive past the loser's fire time.
        yield Timeout(10.0)

    sim.process(body())
    sim.run()
    assert wakeups == [(0, "a")]


def test_firstof_loser_signal_stays_usable_by_other_waiters():
    sim = Simulator()
    signal = Signal(sim)
    seen = []

    def racer():
        # The timeout wins; the signal loses the race but must remain a
        # perfectly good one-shot for the second waiter.
        yield FirstOf([signal, Timeout(0.5)])

    def late_firer():
        yield Timeout(1.0)
        signal.fire("late")

    def second_waiter():
        value = yield signal
        seen.append(value)

    sim.process(racer())
    sim.process(late_firer())
    sim.process(second_waiter())
    sim.run()
    assert seen == ["late"]


def test_firstof_propagates_child_failure():
    sim = Simulator()
    signal = Signal(sim)

    def failer():
        yield Timeout(0.1)
        signal.fail(RuntimeError("boom"))

    def waiter():
        yield FirstOf([signal, Timeout(5.0)])

    sim.process(failer())
    proc = sim.process(waiter())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_until_process(proc)


def test_firstof_requires_children():
    with pytest.raises(SimulationError):
        FirstOf([])


def test_firstof_simultaneous_children_first_listed_wins():
    sim = Simulator()

    def body():
        result = yield FirstOf([Timeout(1.0, "a"), Timeout(1.0, "b")])
        return result

    proc = sim.process(body())
    assert sim.run_until_process(proc) == (0, "a")
