"""Tests for busy/wait cycle separation in the counters."""

import pytest

from repro.simnet.cost_model import OpCost
from repro.simnet.counters import CycleCategory, HwCounters


def test_wait_cycles_tracked_separately():
    counters = HwCounters()
    counters.charge(OpCost(instructions=40, retiring=10, core=10), count=10)
    counters.charge_wait(300)
    assert counters.total_cycles == pytest.approx(500)
    assert counters.wait_cycles == pytest.approx(300)
    assert counters.busy_cycles == pytest.approx(200)


def test_busy_ipc_excludes_waits():
    counters = HwCounters()
    counters.charge(OpCost(instructions=100, retiring=25, core=75), count=1)
    counters.charge_wait(900)
    assert counters.ipc == pytest.approx(0.1)
    assert counters.busy_ipc == pytest.approx(1.0)


def test_breakdown_exclude_wait():
    counters = HwCounters()
    counters.charge(OpCost(retiring=50, memory=50), count=1)
    counters.charge_wait(100)
    full = counters.breakdown()
    busy = counters.breakdown(exclude_wait=True)
    assert full[CycleCategory.CORE] == pytest.approx(0.5)
    assert busy[CycleCategory.CORE] == pytest.approx(0.0)
    assert busy[CycleCategory.MEMORY] == pytest.approx(0.5)
    assert sum(busy.values()) == pytest.approx(1.0)


def test_merge_and_copy_carry_wait_cycles():
    a = HwCounters()
    a.charge_wait(70)
    b = a.copy()
    b.merge(a)
    assert b.wait_cycles == pytest.approx(140)


def test_busy_cycles_per_record():
    counters = HwCounters()
    counters.charge(OpCost(retiring=100), count=1)
    counters.charge_wait(100)
    counters.count_records(10)
    assert counters.busy_cycles_per_record == pytest.approx(10)
    assert counters.cycles_per_record == pytest.approx(20)


def test_zero_division_safety():
    counters = HwCounters()
    assert counters.busy_ipc == 0.0
    assert counters.busy_cycles == 0.0
