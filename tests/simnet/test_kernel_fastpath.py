"""Regression tests for the kernel scheduling fast path.

Covers the two behaviours the wall-clock PR must not change:

* ``run_until_process`` surfaces *unobserved* failures of background
  processes exactly like ``run`` does (the historical bug: it silently
  swallowed them);
* the zero-delay ready deque fires events in exactly the ``(when, seq)``
  order a pure heap would have produced.
"""

import pytest

from repro.common.errors import SimulationError
from repro.simnet.kernel import Simulator, Timeout


class TestRunUntilProcessUnobserved:
    def test_background_failure_is_raised(self):
        """A process nobody waits on must not fail silently."""
        sim = Simulator()

        def background():
            yield Timeout(1e-3)
            raise RuntimeError("background boom")

        def awaited():
            yield Timeout(1.0)
            return "done"

        sim.process(background(), name="bg")
        proc = sim.process(awaited(), name="main")
        with pytest.raises(RuntimeError, match="background boom"):
            sim.run_until_process(proc)

    def test_awaited_process_failure_surfaces_through_value(self):
        """The awaited process's own failure is observed, not 'unobserved'."""
        sim = Simulator()

        def failing():
            yield Timeout(1e-3)
            raise ValueError("awaited boom")

        proc = sim.process(failing(), name="failing")
        with pytest.raises(ValueError, match="awaited boom"):
            sim.run_until_process(proc)

    def test_run_and_run_until_process_agree(self):
        """Both drivers raise the same background failure."""

        def background():
            yield Timeout(1e-3)
            raise RuntimeError("boom either way")

        def awaited():
            yield Timeout(1.0)

        sim = Simulator()
        sim.process(background(), name="bg")
        with pytest.raises(RuntimeError, match="boom either way"):
            sim.run()

        sim = Simulator()
        sim.process(background(), name="bg")
        proc = sim.process(awaited(), name="main")
        with pytest.raises(RuntimeError, match="boom either way"):
            sim.run_until_process(proc)

    def test_successful_run_until_process_returns_value(self):
        sim = Simulator()

        def body():
            yield Timeout(0.5)
            return 42

        proc = sim.process(body(), name="ok")
        assert sim.run_until_process(proc) == 42


class TestReadyQueueOrdering:
    def test_zero_delay_does_not_jump_same_time_heap_events(self):
        """A zero-delay event scheduled at time t must still fire after
        heap events at time t that carry smaller sequence numbers."""
        sim = Simulator()
        order = []

        def first_at_one():
            order.append("heap-seq1")
            # Scheduled at t=1.0 with a later seq than the pending
            # heap-seq2 entry: must fire after it.
            sim.call_in(0.0, lambda: order.append("ready-seq3"))

        sim.call_in(1.0, first_at_one)
        sim.call_in(1.0, lambda: order.append("heap-seq2"))
        sim.run()
        assert order == ["heap-seq1", "heap-seq2", "ready-seq3"]

    def test_zero_delay_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_in(0.0, order.append, i)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_zero_delay_fires_before_later_heap_events(self):
        sim = Simulator()
        order = []
        sim.call_in(1e-9, order.append, "delayed")
        sim.call_in(0.0, order.append, "immediate")
        sim.run()
        assert order == ["immediate", "delayed"]

    def test_until_respects_ready_queue(self):
        """run(until) must stop before ready events scheduled past it."""
        sim = Simulator()
        fired = []

        def late():
            fired.append("late")
            sim.call_in(0.0, fired.append, "later-still")

        sim.call_in(2.0, late)
        assert sim.run(until=1.0) == 1.0
        assert fired == []
        sim.run()
        assert fired == ["late", "later-still"]

    def test_scheduled_events_counts_both_queues(self):
        sim = Simulator()
        sim.call_in(0.0, lambda: None)
        sim.call_in(1.0, lambda: None)
        assert sim.scheduled_events == 2
        sim.run()
        assert sim.scheduled_events == 2


class TestRunUntilProcessDeadlock:
    def test_deadlock_detected_with_empty_queues(self):
        sim = Simulator()

        def waits_forever():
            yield sim.signal("never")

        proc = sim.process(waits_forever(), name="stuck")
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_process(proc)
