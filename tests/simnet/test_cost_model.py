"""Unit and property tests for the micro-architecture cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import CpuConfig
from repro.common.errors import ConfigError
from repro.simnet.cost_model import CacheModel, CostModel, CostProfile, OpCost
from repro.simnet.counters import CycleCategory, HwCounters


CPU = CpuConfig()


def test_opcost_total_cycles():
    cost = OpCost(retiring=1, frontend=2, bad_spec=3, memory=4, core=5)
    assert cost.total_cycles == 15


def test_opcost_plus_and_scaled():
    a = OpCost(instructions=10, retiring=2.5, l1_misses=1)
    b = OpCost(instructions=6, core=4, mem_bytes=128)
    combined = a.plus(b)
    assert combined.instructions == 16
    assert combined.retiring == 2.5
    assert combined.core == 4
    assert combined.mem_bytes == 128
    doubled = combined.scaled(2)
    assert doubled.instructions == 32
    assert doubled.l1_misses == 2


def test_profile_rejects_bad_values():
    with pytest.raises(ConfigError):
        CostProfile("x", instructions=-1)
    with pytest.raises(ConfigError):
        CostProfile("x", instructions=1, mlp=0)


def test_profile_scaled():
    profile = CostProfile("p", instructions=10, frontend=4, core=2)
    big = profile.scaled(3)
    assert big.instructions == 30
    assert big.frontend == 12
    assert big.mlp == profile.mlp


def test_cache_miss_rates_tiny_working_set():
    cache = CacheModel(CPU)
    assert cache.miss_rates(1024) == (0.0, 0.0, 0.0)


def test_cache_miss_rates_huge_working_set():
    cache = CacheModel(CPU)
    l1, l2, llc = cache.miss_rates(100 * 1024 ** 3)
    assert l1 == pytest.approx(1.0, abs=1e-3)
    assert llc == pytest.approx(1.0, abs=1e-3)


def test_cache_miss_rates_monotone_in_level():
    cache = CacheModel(CPU)
    l1, l2, llc = cache.miss_rates(4 * 1024 ** 2)  # 4 MiB: fits LLC only
    assert l1 >= l2 >= llc
    assert llc == 0.0
    assert l1 > 0.9


@given(st.floats(min_value=1.0, max_value=1e12))
def test_property_miss_rates_ordered_and_bounded(ws):
    l1, l2, llc = CacheModel(CPU).miss_rates(ws)
    assert 0.0 <= llc <= l2 <= l1 <= 1.0


def test_access_cost_counts_misses_and_traffic():
    cache = CacheModel(CPU)
    ws = 1 << 40  # everything misses
    cost = cache.access_cost(ws, lines_touched=2.0, mlp=8.0)
    assert cost.l1_misses == pytest.approx(2.0, rel=1e-4)
    assert cost.llc_misses == pytest.approx(2.0, rel=1e-4)
    assert cost.mem_bytes == pytest.approx(2.0 * 64 * 2, rel=1e-4)  # fill + writeback
    assert cost.memory == pytest.approx(2.0 * CPU.dram_latency_cycles / 8.0, rel=1e-2)


def test_access_cost_clean_reads_halve_traffic():
    cache = CacheModel(CPU)
    ws = 1 << 40
    dirty = cache.access_cost(ws, 1.0, 8.0, dirty_fraction=1.0)
    clean = cache.access_cost(ws, 1.0, 8.0, dirty_fraction=0.0)
    assert clean.mem_bytes == pytest.approx(dirty.mem_bytes / 2)


def test_streaming_cost_compulsory_misses():
    cache = CacheModel(CPU)
    cost = cache.streaming_cost(64 * 100)
    assert cost.llc_misses == pytest.approx(100)
    assert cost.mem_bytes == pytest.approx(6400)


def test_cost_model_retiring_from_instructions():
    model = CostModel(CPU)
    profile = CostProfile("p", instructions=40)
    cost = model.op(profile)
    assert cost.retiring == pytest.approx(10.0)
    assert cost.total_cycles == pytest.approx(10.0)


def test_cost_model_memoizes():
    model = CostModel(CPU)
    profile = CostProfile("p", instructions=40)
    assert model.op(profile, 1e9, 2.0) is model.op(profile, 1e9, 2.0)


def test_cost_model_seconds():
    model = CostModel(CPU)
    cost = OpCost(retiring=CPU.frequency_hz)  # one second worth of cycles
    assert model.seconds(cost) == pytest.approx(1.0)
    assert model.seconds(cost, count=0.5) == pytest.approx(0.5)


def test_counters_charge_and_derive():
    counters = HwCounters()
    cost = OpCost(
        instructions=42, retiring=10.5, frontend=2, bad_spec=2, memory=25, core=13,
        l1_misses=1.7, l2_misses=1.5, llc_misses=1.3, mem_bytes=166,
    )
    counters.charge(cost, count=1000)
    counters.count_records(1000)
    assert counters.instructions_per_record == pytest.approx(42)
    assert counters.cycles_per_record == pytest.approx(52.5)
    assert counters.ipc == pytest.approx(0.8)
    assert counters.llc_misses_per_record == pytest.approx(1.3)
    breakdown = counters.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown[CycleCategory.MEMORY] > breakdown[CycleCategory.FRONTEND]


def test_counters_wait_is_core_bound():
    counters = HwCounters()
    counters.charge_wait(500)
    assert counters.cycles[CycleCategory.CORE] == 500
    assert counters.total_cycles == 500


def test_counters_merge_and_copy():
    a = HwCounters()
    a.charge(OpCost(instructions=10, retiring=2.5))
    a.count_records(5)
    b = a.copy()
    b.merge(a)
    assert b.instructions == 20
    assert b.records == 10
    assert a.records == 5


def test_counters_empty_derived_metrics_are_zero():
    counters = HwCounters()
    assert counters.ipc == 0.0
    assert counters.cycles_per_record == 0.0
    assert counters.memory_bandwidth(0.0) == 0.0
    assert all(v == 0.0 for v in counters.breakdown().values())


def test_memory_bandwidth():
    counters = HwCounters()
    counters.charge(OpCost(mem_bytes=70.2e9))
    assert counters.memory_bandwidth(1.0) == pytest.approx(70.2e9)


class TestSlowdownLever:
    """The slow-node gray fault's compute lever."""

    def test_quarter_speed_quadruples_seconds(self):
        model = CostModel(CPU)
        cost = OpCost(retiring=100)
        nominal = model.seconds(cost)
        model.slow_down(0.25)
        assert model.seconds(cost) == pytest.approx(4.0 * nominal)

    def test_restore_returns_to_nominal(self):
        model = CostModel(CPU)
        cost = OpCost(retiring=100)
        nominal = model.seconds(cost)
        model.slow_down(0.5)
        model.restore_speed()
        assert model.seconds(cost) == nominal

    def test_slowdown_survives_the_memo(self):
        # compute_cost memoizes cycle counts; pricing happens at
        # seconds() time, so a mid-run slowdown applies to cached costs.
        model = CostModel(CPU)
        profile = CostProfile("op", instructions=50)
        first = model.seconds(model.compute_cost(profile))
        model.slow_down(0.5)
        assert model.seconds(model.compute_cost(profile)) == pytest.approx(
            2.0 * first
        )

    @pytest.mark.parametrize("factor", [0.0, 1.0, 2.0, -0.5])
    def test_non_slowdown_factors_rejected(self, factor):
        with pytest.raises(ConfigError, match="factor"):
            CostModel(CPU).slow_down(factor)
