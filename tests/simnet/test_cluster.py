"""Unit tests for the cluster hardware model."""

import pytest

from repro.common.config import ClusterConfig, CpuConfig, NicConfig, NodeConfig
from repro.common.errors import ConfigError
from repro.simnet.cluster import BandwidthPipe, Cluster
from repro.simnet.cost_model import OpCost
from repro.simnet.kernel import Simulator, Timeout


def make_cluster(nodes=2):
    sim = Simulator()
    return sim, Cluster(sim, ClusterConfig(nodes=nodes))


def test_pipe_single_transfer_time():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_s=1000.0)
    done_at = []

    def body():
        yield pipe.transfer(500)
        done_at.append(sim.now)

    sim.process(body())
    sim.run()
    assert done_at == [pytest.approx(0.5)]


def test_pipe_serializes_back_to_back():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_s=1000.0)
    times = []

    def body(tag):
        yield pipe.transfer(1000)
        times.append(sim.now)

    sim.process(body("a"))
    sim.process(body("b"))
    sim.run()
    assert times == pytest.approx([1.0, 2.0])


def test_pipe_overhead_added():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_s=1000.0)
    times = []

    def body():
        yield pipe.transfer(1000, overhead_s=0.5)
        times.append(sim.now)

    sim.process(body())
    sim.run()
    assert times == [pytest.approx(1.5)]


def test_pipe_utilization():
    sim = Simulator()
    pipe = BandwidthPipe(sim, bytes_per_s=1000.0)

    def body():
        yield pipe.transfer(500)

    sim.process(body())
    sim.run()
    assert pipe.utilization(1.0) == pytest.approx(0.5)
    assert pipe.utilization(0.0) == 0.0


def test_pipe_rejects_bad_bandwidth():
    with pytest.raises(ConfigError):
        BandwidthPipe(Simulator(), bytes_per_s=0)


def test_cluster_builds_nodes_and_cores():
    _sim, cluster = make_cluster(nodes=3)
    assert len(cluster) == 3
    assert len(cluster.node(0).cores) == 10


def test_link_point_to_point_latency_and_bandwidth():
    sim, cluster = make_cluster()
    nic = cluster.config.node.nic
    nbytes = 64 * 1024
    arrival = []

    def body():
        yield cluster.link(0, 1).send(nbytes)
        arrival.append(sim.now)

    sim.process(body())
    sim.run()
    expected = (
        nic.nic_processing_s
        + nbytes / nic.bandwidth_bytes_per_s  # tx serialization
        + nic.propagation_latency_s
        + cluster.config.switch_latency_s
        + nbytes / nic.bandwidth_bytes_per_s  # rx serialization
    )
    assert arrival == [pytest.approx(expected)]


def test_link_rejects_self_loop():
    _sim, cluster = make_cluster()
    with pytest.raises(ConfigError):
        cluster.link(1, 1)


def test_incast_congests_receiver():
    """Two senders into one receiver halve effective per-sender bandwidth."""
    sim, cluster = make_cluster(nodes=3)
    nbytes = 1_000_000
    arrivals = []

    def body(src):
        yield cluster.link(src, 2).send(nbytes)
        arrivals.append(sim.now)

    sim.process(body(0))
    sim.process(body(1))
    sim.run()
    bw = cluster.config.node.nic.bandwidth_bytes_per_s
    # The second message must wait for the first on node 2's RX pipe.
    assert max(arrivals) >= 2 * nbytes / bw


def test_core_execute_charges_counters_and_time():
    sim, cluster = make_cluster()
    core = cluster.node(0).core(0)
    cost = OpCost(instructions=40, retiring=10, core=10)

    def body():
        yield from core.execute(cost, count=100)
        return sim.now

    elapsed = sim.run_until_process(sim.process(body()))
    freq = cluster.config.node.cpu.frequency_hz
    assert elapsed == pytest.approx(100 * 20 / freq)
    assert core.counters.instructions == pytest.approx(4000)
    assert core.counters.records == 0


def test_core_execute_memory_traffic_uses_dram_pipe():
    sim, cluster = make_cluster()
    node = cluster.node(0)
    cost = OpCost(retiring=1, mem_bytes=1e6)

    def body(core):
        yield from core.execute(cost, count=68)  # 68 MB total

    for i in range(2):
        sim.process(body(node.core(i)))
    elapsed = sim.run()
    # 2 cores x 68 MB = 136 MB through a 68 GB/s pipe -> at least 2 ms.
    assert elapsed >= 136e6 / node.config.cpu.dram_bandwidth_bytes_per_s


def test_spin_wait_charges_core_cycles():
    sim, cluster = make_cluster()
    core = cluster.node(0).core(0)

    def body():
        value = yield from core.spin_wait(Timeout(1e-3, "ready"))
        return value

    assert sim.run_until_process(sim.process(body())) == "ready"
    freq = cluster.config.node.cpu.frequency_hz
    from repro.simnet.counters import CycleCategory

    assert core.counters.cycles[CycleCategory.CORE] == pytest.approx(1e-3 * freq)


def test_node_counter_aggregation():
    sim, cluster = make_cluster()
    node = cluster.node(0)
    cost = OpCost(instructions=10, retiring=2.5)

    def body(core):
        yield from core.execute(cost)

    sim.process(body(node.core(0)))
    sim.process(body(node.core(1)))
    sim.run()
    assert node.counters().instructions == pytest.approx(20)
    assert cluster.counters().instructions == pytest.approx(20)


def test_link_jitter_adds_extra_latency_without_dropping():
    # The jitter gray fault's lever: data-plane sends take longer, but
    # every byte still arrives.
    sim, cluster = make_cluster()
    arrival = []

    def body():
        got = yield cluster.link(0, 1).send(64 * 1024)
        arrival.append((sim.now, got))

    sim.process(body())
    sim.run()
    base_t, base_bytes = arrival[0]

    sim2, cluster2 = make_cluster()
    cluster2.set_extra_latency(0, 1, 1e-3)
    arrival2 = []

    def body2():
        got = yield cluster2.link(0, 1).send(64 * 1024)
        arrival2.append((sim2.now, got))

    sim2.process(body2())
    sim2.run()
    jittered_t, jittered_bytes = arrival2[0]
    assert jittered_bytes == base_bytes
    assert jittered_t == pytest.approx(base_t + 1e-3)


def test_link_jitter_is_directional_and_clearable():
    _sim, cluster = make_cluster()
    cluster.set_extra_latency(0, 1, 5e-4)
    assert cluster.extra_latency(0, 1) == 5e-4
    assert cluster.extra_latency(1, 0) == 0.0  # reverse direction clean
    cluster.clear_extra_latency(0, 1)
    assert cluster.extra_latency(0, 1) == 0.0


def test_heartbeat_datagrams_ignore_jitter():
    # Deliberate blindness: the failure detector must NOT see gray
    # jitter, otherwise a slow link looks like a dead peer.
    sim, cluster = make_cluster()
    cluster.set_extra_latency(0, 1, 10.0)
    delivered = []

    def body():
        ok = yield cluster.link(0, 1).send_datagram(64)
        delivered.append((sim.now, ok))

    sim.process(body())
    sim.run()
    t, ok = delivered[0]
    assert ok is True
    assert t < 1.0  # the 10 s jitter never applied
