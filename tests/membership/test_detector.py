"""Unit tests for the phi-accrual failure detector."""

import pytest

from repro.common.errors import ConfigError
from repro.membership.detector import PhiAccrualDetector


def _fed_detector(period=1.0, beats=10, **kwargs):
    """A detector that heard ``beats`` regular heartbeats from peer 1."""
    det = PhiAccrualDetector(0, [1, 2], period, **kwargs)
    for i in range(beats):
        det.heartbeat(1, i * period)
    return det


class TestConstruction:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigError):
            PhiAccrualDetector(0, [1], 0.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigError):
            PhiAccrualDetector(0, [1], 1.0, threshold=0.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigError):
            PhiAccrualDetector(0, [1], 1.0, window=0)

    def test_peers_sorted(self):
        det = PhiAccrualDetector(0, [3, 1, 2], 1.0)
        assert det.peers == [1, 2, 3]


class TestBootstrap:
    def test_never_heard_peer_is_not_suspect(self):
        # A peer we have never heard from has no arrival distribution to
        # fall out of: first-heartbeat flight time must not read as
        # silence at boot.
        det = PhiAccrualDetector(0, [1], 1.0)
        assert det.phi(1, now=100.0) == 0.0
        assert not det.is_suspect(1, now=100.0)
        assert det.suspects(100.0) == []

    def test_mean_bootstraps_to_expected_interval(self):
        det = PhiAccrualDetector(0, [1], 2.0)
        assert det.mean_interval(1) == 2.0

    def test_unknown_peer_heartbeat_ignored(self):
        det = PhiAccrualDetector(0, [1], 1.0)
        det.heartbeat(99, 1.0)
        assert det.heartbeats_seen == 0


class TestPhi:
    def test_phi_zero_right_after_heartbeat(self):
        det = _fed_detector()
        assert det.phi(1, now=9.0) == 0.0

    def test_phi_grows_linearly_with_silence(self):
        det = _fed_detector(period=1.0)
        half = det.phi(1, now=9.0 + 3.0)
        full = det.phi(1, now=9.0 + 6.0)
        assert full == pytest.approx(2 * half)

    def test_threshold_crossing_near_6_9_periods(self):
        # phi = silence / (mean * ln 10); threshold 3.0 crosses at
        # 3 * ln(10) ~= 6.9 periods of silence.
        det = _fed_detector(period=1.0, threshold=3.0)
        assert not det.is_suspect(1, now=9.0 + 6.8)
        assert det.is_suspect(1, now=9.0 + 7.0)

    def test_interval_samples_clamped(self):
        # One long gap (a partition) must not blind the detector: the
        # recorded sample is capped at 4x the expected period.
        det = PhiAccrualDetector(0, [1], 1.0)
        det.heartbeat(1, 0.0)
        det.heartbeat(1, 100.0)  # 100 s gap, clamped to 4 s
        assert det.mean_interval(1) <= 4.0

    def test_mean_floored_at_half_period(self):
        # Bursty arrivals must not make the detector hair-triggered.
        det = PhiAccrualDetector(0, [1], 1.0)
        for i in range(10):
            det.heartbeat(1, i * 0.01)
        assert det.mean_interval(1) == pytest.approx(0.5)

    def test_suspects_lists_only_silent_peers(self):
        det = PhiAccrualDetector(0, [1, 2], 1.0)
        for i in range(10):
            det.heartbeat(1, float(i))
            det.heartbeat(2, float(i))
        det.heartbeat(2, 20.0)  # peer 2 alive, peer 1 silent since t=9
        assert det.suspects(20.0) == [1]
