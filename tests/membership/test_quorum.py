"""Unit tests for the quorum rule and the term/commit registry."""

from repro.membership.quorum import TermRegistry, quorum_size


class TestQuorumSize:
    def test_strict_majority_for_three_plus(self):
        assert quorum_size(3) == 2
        assert quorum_size(4) == 3
        assert quorum_size(5) == 3
        assert quorum_size(7) == 4

    def test_two_member_group_degenerates_to_one(self):
        # A witness-less HA pair cannot tell a dead peer from a cut
        # link; like any two-node cluster it trades split-brain safety
        # for availability.
        assert quorum_size(2) == 1
        assert quorum_size(1) == 1

    def test_no_two_disjoint_quorums(self):
        # The invariant the fence is built on: for any group of 3+,
        # two disjoint subsets cannot both reach quorum.
        for members in range(3, 12):
            assert 2 * quorum_size(members) > members


class TestTermRegistry:
    def test_terms_start_at_zero(self):
        terms = TermRegistry()
        assert terms.term_of(0) == 0

    def test_bump_advances_and_records_fence(self):
        terms = TermRegistry()
        assert terms.bump(partition=2, victim=1, at_s=0.5) == 1
        assert terms.bump(partition=2, victim=0, at_s=0.9) == 2
        assert terms.term_of(2) == 2
        assert [f["new_term"] for f in terms.fences] == [1, 2]
        assert terms.fences[0]["victim"] == 1

    def test_commits_recorded_under_current_term(self):
        terms = TermRegistry()
        terms.note_commit(partition=0, executor=1)
        terms.bump(partition=0, victim=1, at_s=1.0)
        terms.note_commit(partition=0, executor=2)
        assert terms.committers(0) == {0: [1], 1: [2]}

    def test_single_committer_per_term_is_not_split_brain(self):
        terms = TermRegistry()
        terms.note_commit(0, 1)
        terms.bump(0, victim=1, at_s=1.0)
        terms.note_commit(0, 2)
        assert terms.split_brain_commits() == []

    def test_two_committers_same_term_is_split_brain(self):
        terms = TermRegistry()
        terms.note_commit(0, 1)
        terms.note_commit(0, 2)
        assert terms.split_brain_commits() == [(0, 0, [1, 2])]

    def test_summary_round_trips_to_report(self):
        terms = TermRegistry()
        terms.bump(1, victim=2, at_s=0.25)
        terms.note_commit(1, 0)
        summary = terms.summary()
        assert summary["terms"] == {"1": 1}
        assert summary["split_brain"] == []
        assert summary["fences"][0]["partition"] == 1
