"""Tests for the Report container and experiment rendering contracts."""

from repro.harness.experiments import Report
from repro.metrics.reporting import TextTable


def test_report_render_includes_tables_and_notes():
    report = Report("demo")
    table = TextTable("t", ["a"]).add_row(1)
    report.tables.append(table)
    report.notes.append("remember this")
    rendered = report.render()
    assert "#### Experiment demo ####" in rendered
    assert "== t ==" in rendered
    assert "note: remember this" in rendered


def test_report_empty_renders_header_only():
    rendered = Report("empty").render()
    assert rendered == "#### Experiment empty ####"


def test_every_figure_experiment_appends_its_tables():
    """Guard against the 'built a table, forgot to append it' bug class
    (it bit fig7 and the latency experiment once): every experiment
    function must produce at least one table at miniature size."""
    from repro.harness import (
        ablation_credits,
        ablation_epoch_bytes,
        ablation_execution_strategy,
        ablation_selective_signaling,
        extra_trigger_latency,
        fig6_aggregations,
        fig6_joins,
        fig7_cost,
        fig8_buffer_sweep,
        fig8_parallelism,
        fig8_skew,
        fig9_breakdown_ro,
        fig10_breakdown_ysb,
        table1_counters,
    )

    tiny = {"records_per_thread": 600, "batch_records": 150}
    reports = [
        fig6_aggregations(node_counts=(2,), threads=2, workload_overrides=tiny),
        fig6_joins(
            node_counts=(2,), threads=2,
            workload_overrides={"records_per_thread": 300, "batch_records": 75},
        ),
        fig7_cost(node_counts=(2,), threads=2, workloads=("ysb",), workload_overrides=tiny),
        fig8_buffer_sweep(buffer_sizes=(65536,), threads=2, records_per_thread=8000),
        fig8_parallelism(thread_counts=(2,), records_per_thread=8000),
        fig8_skew(zipf_zs=(0.2,), threads=2, records_per_thread=6000),
        fig9_breakdown_ro(thread_counts=(2,), records_per_thread=8000),
        fig10_breakdown_ysb(threads=2, records_per_thread=1500),
        table1_counters(threads=2, records_per_thread=1500),
        ablation_credits(credit_counts=(8,), threads=2, records_per_thread=8000),
        ablation_epoch_bytes(epoch_sizes=(64 * 1024,), nodes=2, threads=2),
        ablation_execution_strategy(nodes=2, threads=2, records_per_thread=600),
        ablation_selective_signaling(threads=2, records_per_thread=8000),
        extra_trigger_latency(nodes=2, threads=2, records_per_thread=1500),
    ]
    for report in reports:
        assert report.tables, f"{report.name} produced no tables"
        assert report.rows, f"{report.name} produced no rows"
        assert report.render().count("==") >= 2
