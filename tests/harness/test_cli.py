"""Tests for the experiment CLI."""

import json

import pytest

from repro.harness.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_quick_experiment_writes_outputs(tmp_path, capsys):
    code = main(
        ["run", "abl-epoch", "--quick", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "epoch" in out
    assert (tmp_path / "abl-epoch.txt").exists()
    rows = json.loads((tmp_path / "abl-epoch.json").read_text())
    assert rows and all("epoch_bytes" in row for row in rows)


def test_run_fig7_quick(capsys):
    assert main(["run", "fig7", "--quick", "--records", "800"]) == 0
    out = capsys.readouterr().out
    assert "LightSaber" in out
    assert "slash x2" in out


def test_parser_defaults():
    args = build_parser().parse_args(["run", "fig6a-c"])
    assert args.nodes == [2, 4, 8, 16]
    assert args.threads == 10
    assert not args.quick


def test_every_registered_experiment_has_description():
    for name, (description, factory) in EXPERIMENTS.items():
        assert description
        assert callable(factory)


def test_chaos_command_writes_outputs(tmp_path, capsys):
    code = main(
        ["chaos", "--fault", "leader-crash", "--seed", "7",
         "--records", "600", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recovery outcome" in out
    assert "zero-lost-results" in out and "FAIL" not in out
    assert (tmp_path / "chaos.txt").exists()
    rows = json.loads((tmp_path / "chaos.json").read_text())
    assert rows[0]["zero_lost"] is True
    assert rows[0]["deterministic"] is True


def test_chaos_unknown_preset_suggests_closest(capsys):
    assert main(["chaos", "--fault", "leader-crsh"]) == 1
    err = capsys.readouterr().err
    assert "unknown fault preset" in err
    assert "did you mean 'leader-crash'?" in err


def test_chaos_unknown_preset_lists_known(capsys):
    assert main(["chaos", "--fault", "xyzzy"]) == 1
    err = capsys.readouterr().err
    assert "known:" in err
    assert "net-partition" in err and "cascade" in err


def test_chaos_cascade_preset_reports_mttr_columns(tmp_path, capsys):
    code = main(
        ["chaos", "--fault", "cascade", "--seed", "7",
         "--records", "600", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "zero-lost-results" in out and "FAIL" not in out
    for column in ("detection", "promotion", "mttr"):
        assert column in out
    rows = json.loads((tmp_path / "chaos.json").read_text())
    assert rows[0]["zero_lost"] is True
    assert rows[0]["deterministic"] is True


def test_chaos_parser_defaults():
    args = build_parser().parse_args(["chaos"])
    assert args.fault == "leader-crash"
    assert args.seed == 7
    assert args.nodes == 3
    assert args.system == "slash"
    assert not args.no_determinism_check


def test_chaos_unknown_system_suggests_closest(capsys):
    assert main(["chaos", "--system", "slsh"]) == 1
    err = capsys.readouterr().err
    assert "CHAOS FAILED" in err
    assert "unknown system 'slsh'" in err
    assert "did you mean 'slash'?" in err


def test_chaos_system_without_fault_plane_fails_fast(capsys):
    assert main(["chaos", "--system", "lightsaber"]) == 1
    err = capsys.readouterr().err
    assert "CHAOS FAILED" in err
    assert "lacks required capability" in err
    assert "fault_injectable" in err


def test_chaos_unsupported_kind_names_supported_ones(capsys):
    """Flink has a fault plane but no crash recovery: leader-crash is a
    capability error naming the kinds it *can* absorb."""
    assert main(["chaos", "--system", "flink", "--fault", "leader-crash",
                 "--records", "400"]) == 1
    err = capsys.readouterr().err
    assert "CHAOS FAILED" in err
    assert "node-crash" in err
    assert "drop-chunk" in err


def test_chaos_strategy_parser_default():
    args = build_parser().parse_args(["chaos"])
    assert args.strategy == "both"


def test_chaos_unknown_strategy_suggests_closest(capsys):
    assert main(["chaos", "--strategy", "asyn-snapshot"]) == 1
    err = capsys.readouterr().err
    assert "unknown recovery strategy" in err
    assert "did you mean 'async-snapshot'?" in err


def test_chaos_help_lists_strategies(capsys):
    with pytest.raises(SystemExit):
        main(["chaos", "--help"])
    out = capsys.readouterr().out
    assert "epoch-buddy" in out
    assert "async-snapshot" in out


def test_chaos_uppar_crash_recovers_via_async_snapshot(tmp_path, capsys):
    """The headline: UpPar survives a leader crash with zero lost results
    through aligned snapshots + global restart."""
    code = main(
        ["chaos", "--system", "uppar", "--fault", "leader-crash",
         "--strategy", "async-snapshot", "--seed", "7",
         "--records", "400", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "async-snapshot" in out
    assert "zero-lost-results" in out and "FAIL" not in out
    rows = json.loads((tmp_path / "chaos.json").read_text())
    assert rows[0]["recovery_strategy"] == "async-snapshot"
    assert rows[0]["zero_lost"] is True
    assert rows[0]["recovered_records"] > 0


def test_chaos_both_strategies_render_comparison(tmp_path, capsys):
    code = main(
        ["chaos", "--fault", "leader-crash", "--seed", "7",
         "--records", "400", "--no-determinism-check",
         "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recovery strategy comparison" in out
    for column in ("snapshot overhead", "recovered records"):
        assert column in out
    rows = json.loads((tmp_path / "chaos.json").read_text())
    strategies = [row["recovery_strategy"] for row in rows]
    assert strategies == ["epoch-buddy", "async-snapshot"]
    assert all(row["zero_lost"] for row in rows)


def test_chaos_on_uppar_through_generic_hooks(tmp_path, capsys):
    code = main(
        ["chaos", "--system", "uppar", "--fault", "nic-flap", "--seed", "7",
         "--nodes", "2", "--records", "600", "--out", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "zero-lost-results" in out and "FAIL" not in out
    rows = json.loads((tmp_path / "chaos.json").read_text())
    assert rows[0]["system"] == "uppar"
    assert rows[0]["zero_lost"] is True
    assert rows[0]["deterministic"] is True
