"""Byte-identity of figure renders against committed goldens.

The runtime refactor (registry + scenarios + shared differ) must not
move a single simulated cycle: these goldens were rendered from the
pre-refactor cell-builder code paths at pinned sizes, and every future
change to the construction path has to reproduce them byte-for-byte.
"""

import pathlib

from repro.harness import experiments as exp

GOLDEN = pathlib.Path(__file__).parent / "golden"


def test_fig6a_render_matches_golden():
    report = exp.fig6_aggregations(
        node_counts=(2,),
        threads=2,
        workload_overrides={"records_per_thread": 600, "batch_records": 150},
    )
    assert report.render() + "\n" == (GOLDEN / "fig6a_smoke.txt").read_text()


def test_fig8a_render_matches_golden():
    report = exp.fig8_buffer_sweep(
        buffer_sizes=(4096, 65536), threads=2, records_per_thread=8000
    )
    assert report.render() + "\n" == (GOLDEN / "fig8a_smoke.txt").read_text()
