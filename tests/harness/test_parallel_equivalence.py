"""Tier-1 guarantee: ``-j N`` output is byte-identical to ``-j 1``.

Runs two real experiments end to end through the CLI at tiny sizes,
once serially and once over a 4-worker process pool, and compares the
written report files byte for byte — the determinism contract of the
parallel harness (docs/performance.md).
"""

import pathlib

import pytest

from repro.harness.cli import main
from repro.harness.parallel import (
    PoolRunner,
    SerialRunner,
    end_to_end_cell,
    run_cell,
    transfer_cell,
)

#: Two experiments with different cell kinds (transfer + end-to-end).
TARGETS = ["fig8ab", "table1"]
SIZE_ARGS = ["--quick", "--records", "300"]


@pytest.mark.parametrize("name", TARGETS)
def test_j4_output_byte_identical_to_j1(name, tmp_path, capsys):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    assert main(["run", name, *SIZE_ARGS, "-j", "1", "--out", str(serial_dir)]) == 0
    assert main(["run", name, *SIZE_ARGS, "-j", "4", "--out", str(parallel_dir)]) == 0
    capsys.readouterr()
    for suffix in (".txt", ".json"):
        serial = (serial_dir / f"{name}{suffix}").read_bytes()
        parallel = (parallel_dir / f"{name}{suffix}").read_bytes()
        assert serial == parallel, f"{name}{suffix} differs between -j 1 and -j 4"


def test_pool_runner_preserves_cell_order():
    """Results must come back positionally, never by completion order."""
    cells = [
        transfer_cell(
            "slash",
            workload_overrides={"records_per_thread": 200 * (i + 1)},
            threads=2, buffer_bytes=16384,
        )
        for i in range(4)
    ]
    serial = SerialRunner().map(cells)
    from repro.harness.parallel import make_pool

    with make_pool(2) as pool:
        pooled = PoolRunner(pool, 2).map(cells)
    assert [r.records for r in pooled] == [r.records for r in serial]
    assert [r.throughput_bytes_per_s for r in pooled] == [
        r.throughput_bytes_per_s for r in serial
    ]


def test_run_cell_end_to_end_matches_direct_call():
    from repro.harness.runner import run_end_to_end

    overrides = {"records_per_thread": 200, "batch_records": 100}
    via_cell = run_cell(
        end_to_end_cell("slash", "ysb", 2, 2, workload_overrides=overrides)
    )
    direct = run_end_to_end("slash", "ysb", 2, 2, workload_overrides=overrides)
    assert via_cell.sim_seconds == direct.sim_seconds
    assert via_cell.throughput_records_per_s == direct.throughput_records_per_s


def test_unknown_cell_kind_raises():
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown cell kind"):
        run_cell(("bogus", {}))


def test_per_panel_aliases_resolve(tmp_path, capsys):
    out = tmp_path / "alias"
    assert main(["run", "fig8a", *SIZE_ARGS, "--out", str(out)]) == 0
    capsys.readouterr()
    assert (out / "fig8ab.txt").exists()


def test_unknown_experiment_suggests_closest(capsys):
    assert main(["run", "fig8x"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "did you mean" in err
