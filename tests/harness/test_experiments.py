"""Tests for the experiment harness — miniature versions of each figure.

These run the exact code paths the benchmark files use, at tiny sizes,
and assert the qualitative claims of the paper (the 'shape'): who wins,
which way curves bend, which category dominates a breakdown.
"""

import pytest

from repro.common.errors import ConfigError
from repro.harness import (
    ablation_credits,
    ablation_epoch_bytes,
    ablation_execution_strategy,
    ablation_selective_signaling,
    build_engine,
    fig6_aggregations,
    fig6_joins,
    fig7_cost,
    fig8_buffer_sweep,
    fig8_parallelism,
    fig8_skew,
    fig9_breakdown_ro,
    fig10_breakdown_ysb,
    make_workload,
    run_end_to_end,
    table1_counters,
)

TINY = {"records_per_thread": 1200, "batch_records": 300}


class TestRunner:
    def test_make_workload_known(self):
        assert make_workload("ysb", records_per_thread=10).records_per_thread == 10

    def test_make_workload_unknown(self):
        with pytest.raises(ConfigError):
            make_workload("tpch")

    def test_build_engine_all_systems(self):
        for system in ("slash", "uppar", "flink", "lightsaber"):
            assert build_engine(system, 2) is not None
        with pytest.raises(ConfigError):
            build_engine("spark", 2)

    def test_run_end_to_end_row(self):
        row = run_end_to_end("slash", "ysb", 2, 2, workload_overrides=TINY)
        assert row.records == 2 * 2 * 1200
        assert row.throughput_records_per_s > 0
        assert row.per_node_throughput == pytest.approx(
            row.throughput_records_per_s / 2
        )


class TestFig6Shape:
    def test_aggregations_ordering_and_render(self):
        report = fig6_aggregations(
            node_counts=(2,), threads=4, workload_overrides=TINY,
        )
        by_system = {
            row["system"]: row["throughput"]
            for row in report.rows
            if row["workload"] == "ysb"
        }
        assert by_system["slash"] > by_system["uppar"] > by_system["flink"]
        rendered = report.render()
        assert "ysb" in rendered and "slash/uppar" in rendered

    def test_joins_ordering(self):
        report = fig6_joins(
            node_counts=(2,), threads=4,
            workload_overrides={"records_per_thread": 500, "batch_records": 125},
        )
        for workload in ("nb8", "nb11"):
            by_system = {
                row["system"]: row["throughput"]
                for row in report.rows
                if row["workload"] == workload
            }
            assert by_system["slash"] > by_system["flink"]
            assert by_system["slash"] > by_system["uppar"]


class TestFig7Shape:
    def test_slash_beats_lightsaber_with_nodes(self):
        report = fig7_cost(
            node_counts=(2, 4), threads=4, workloads=("ysb",),
            workload_overrides=TINY,
        )
        speedups = [
            row["speedup_vs_lightsaber"]
            for row in report.rows
            if row["system"] == "slash"
        ]
        assert speedups[0] > 1.0  # 2 nodes already beat one scale-up node
        assert speedups[1] > speedups[0]  # and it keeps scaling


class TestFig8Shapes:
    def test_buffer_sweep_throughput_grows_then_saturates(self):
        report = fig8_buffer_sweep(
            buffer_sizes=(4096, 65536), threads=2, records_per_thread=20_000
        )
        slash = {
            row["buffer_bytes"]: row["throughput_bytes_per_s"]
            for row in report.rows
            if row["system"] == "slash"
        }
        assert slash[65536] > slash[4096]
        latency = {
            row["buffer_bytes"]: row["mean_latency_s"]
            for row in report.rows
            if row["system"] == "slash"
        }
        assert latency[65536] > latency[4096]

    def test_parallelism_slash_saturates_before_uppar(self):
        report = fig8_parallelism(
            thread_counts=(2, 8), records_per_thread=20_000
        )
        rows = {(r["system"], r["threads"]): r["throughput_bytes_per_s"] for r in report.rows}
        assert rows[("slash", 2)] > rows[("uppar", 2)]
        assert rows[("uppar", 8)] > rows[("uppar", 2)]

    def test_skew_directions(self):
        report = fig8_skew(
            zipf_zs=(0.2, 2.0), threads=4, records_per_thread=16_000
        )
        rows = {
            (r["workload"], r["system"], r["z"]): r for r in report.rows
        }
        # RO: UpPar collapses, Slash flat.
        assert (
            rows[("ro", "uppar", 2.0)]["throughput_bytes_per_s"]
            < rows[("ro", "uppar", 0.2)]["throughput_bytes_per_s"]
        )
        slash_ratio = (
            rows[("ro", "slash", 2.0)]["throughput_bytes_per_s"]
            / rows[("ro", "slash", 0.2)]["throughput_bytes_per_s"]
        )
        assert slash_ratio > 0.85
        # YSB: Slash rises with skew.
        assert (
            rows[("ysb", "slash", 2.0)]["throughput_records_per_s"]
            > rows[("ysb", "slash", 0.2)]["throughput_records_per_s"]
        )


class TestBreakdownShapes:
    def test_fig9_verdicts(self):
        report = fig9_breakdown_ro(thread_counts=(2,), records_per_thread=20_000)
        rendered = report.render()
        assert "uppar sender" in rendered
        # The paper's verdicts: UpPar receiver core-bound (waiting on the
        # slow sender); Slash sender core-bound (waiting on the network).
        (payload,) = [r for r in report.rows if r["system"] == "uppar"]
        from repro.simnet.counters import CycleCategory

        receiver = payload["receiver"]
        assert receiver[CycleCategory.CORE] == max(
            v for k, v in receiver.items() if k != CycleCategory.RETIRING
        )

    def test_fig10_slash_memory_bound(self):
        report = fig10_breakdown_ysb(threads=4, records_per_thread=4_000)
        (slash_row,) = [r for r in report.rows if r["system"] == "slash"]
        from repro.simnet.counters import CycleCategory

        busy = slash_row["busy"]["slash (whole)"]
        assert busy[CycleCategory.MEMORY] > busy[CycleCategory.FRONTEND]

    def test_table1_magnitudes(self):
        report = table1_counters(threads=4, records_per_thread=4_000)
        rows = {r["who"]: r for r in report.rows}
        # UpPar needs more cycles per record than Slash.
        assert rows["uppar sender"]["cyc_per_rec"] > rows["slash"]["cyc_per_rec"] * 0.5
        assert rows["slash"]["ipc"] > 0
        assert rows["slash"]["mem_bw_bytes_per_s"] > 0


class TestAblations:
    def test_credits_eight_is_sweet_spot(self):
        report = ablation_credits(
            credit_counts=(1, 8), threads=2, records_per_thread=20_000
        )
        rows = {r["credits"]: r["throughput_bytes_per_s"] for r in report.rows}
        assert rows[8] > rows[1]  # no pipelining with a single credit

    def test_epoch_sweep_runs(self):
        report = ablation_epoch_bytes(
            epoch_sizes=(16 * 1024, 1024 * 1024), nodes=2, threads=2
        )
        assert len(report.rows) == 2
        assert all(r["throughput"] > 0 for r in report.rows)

    def test_execution_strategy_compiled_faster(self):
        report = ablation_execution_strategy(nodes=2, threads=2, records_per_thread=1000)
        rows = {r["strategy"]: r["throughput"] for r in report.rows}
        assert rows["compiled"] > rows["interpreted"]

    def test_selective_signaling_wins(self):
        report = ablation_selective_signaling(threads=2, records_per_thread=20_000)
        rows = {r["signaled"]: r["throughput_bytes_per_s"] for r in report.rows}
        assert rows[False] >= rows[True] * 0.98
