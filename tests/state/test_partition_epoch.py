"""Tests for key partitioning and epoch bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StateError
from repro.state.epoch import EpochDelta, EpochLedger, EpochManager
from repro.state.partition import KeyPartitioner, PartitionDirectory, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_distinguishes(self):
        assert stable_hash(1) != stable_hash(2)
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_rejects_unsupported(self):
        with pytest.raises(StateError):
            stable_hash(3.14)

    @given(st.integers(min_value=0, max_value=2 ** 63))
    def test_property_in_64bit_range(self, key):
        assert 0 <= stable_hash(key) < 2 ** 64


class TestKeyPartitioner:
    def test_range(self):
        partitioner = KeyPartitioner(4)
        for key in range(1000):
            assert 0 <= partitioner(key) < 4

    def test_roughly_balanced(self):
        partitioner = KeyPartitioner(4)
        counts = [0] * 4
        for key in range(10000):
            counts[partitioner(key)] += 1
        assert min(counts) > 2000  # within 20% of fair share

    def test_zero_partitions_rejected(self):
        with pytest.raises(StateError):
            KeyPartitioner(0)


class TestPartitionDirectory:
    def test_identity_leadership(self):
        directory = PartitionDirectory(4)
        for partition in range(4):
            assert directory.leader_of_partition(partition) == partition
            assert directory.partitions_led_by(partition) == [partition]
            assert directory.is_leader(partition, partition)
            assert not directory.is_leader(partition, (partition + 1) % 4)

    def test_leader_of_key_consistent_with_partitioner(self):
        directory = PartitionDirectory(8)
        for key in range(100):
            assert directory.leader_of_key(key) == directory.partitioner(key)

    def test_out_of_range_partition(self):
        with pytest.raises(StateError):
            PartitionDirectory(2).leader_of_partition(2)


class TestEpochManager:
    def test_threshold_crossing(self):
        manager = EpochManager(epoch_bytes=100)
        assert not manager.offer(60)
        assert manager.bytes_into_epoch == 60
        assert manager.offer(40)
        assert manager.current_epoch == 1
        assert manager.bytes_into_epoch == 0

    def test_force_ends_epoch_early(self):
        manager = EpochManager(epoch_bytes=1000)
        manager.offer(10)
        closed = manager.force()
        assert closed == 0
        assert manager.current_epoch == 1
        assert manager.bytes_into_epoch == 0

    def test_bad_args(self):
        with pytest.raises(StateError):
            EpochManager(epoch_bytes=0)
        with pytest.raises(StateError):
            EpochManager().offer(-1)

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=100))
    def test_property_epoch_count_matches_bytes(self, chunks):
        manager = EpochManager(epoch_bytes=100)
        boundaries = sum(1 for chunk in chunks if manager.offer(chunk))
        assert boundaries == manager.current_epoch
        assert manager.bytes_into_epoch < 100


def make_delta(epoch, partition=1, executor=0, operator="op"):
    return EpochDelta(
        operator_id=operator,
        partition=partition,
        from_executor=executor,
        epoch=epoch,
        pairs=(),
        nbytes=32,
        watermark=float(epoch),
    )


class TestEpochLedger:
    def test_dense_sequence_admitted(self):
        ledger = EpochLedger()
        for epoch in range(5):
            ledger.admit(make_delta(epoch))
        assert ledger.last_epoch("op", 1, 0) == 4

    def test_skip_rejected(self):
        ledger = EpochLedger()
        ledger.admit(make_delta(0))
        with pytest.raises(StateError, match="skip"):
            ledger.admit(make_delta(2))

    def test_replay_deduped_not_merged(self):
        ledger = EpochLedger()
        assert ledger.admit(make_delta(0)) is True
        # A re-delivered delta is a duplicate, not corruption: admit
        # reports it stale so the caller skips the merge (exactly-once).
        assert ledger.admit(make_delta(0)) is False
        assert ledger.last_epoch("op", 1, 0) == 0
        # The dense sequence resumes normally after a dedupe.
        assert ledger.admit(make_delta(1)) is True

    def test_out_of_order_redelivery_deduped(self):
        ledger = EpochLedger()
        for epoch in range(3):
            ledger.admit(make_delta(epoch))
        assert ledger.admit(make_delta(1)) is False
        assert ledger.last_epoch("op", 1, 0) == 2

    def test_seed_installs_admission_point(self):
        ledger = EpochLedger()
        ledger.seed("op", 1, 0, 4)
        assert ledger.last_epoch("op", 1, 0) == 4
        assert ledger.admit(make_delta(3)) is False
        assert ledger.admit(make_delta(5)) is True
        # Seeding never moves the frontier backwards.
        ledger.seed("op", 1, 0, 2)
        assert ledger.last_epoch("op", 1, 0) == 5

    def test_streams_tracked_independently(self):
        ledger = EpochLedger()
        ledger.admit(make_delta(0, executor=0))
        ledger.admit(make_delta(0, executor=1))
        ledger.admit(make_delta(0, partition=2, executor=0))
        assert ledger.last_epoch("op", 1, 1) == 0
        assert ledger.last_epoch("op", 9, 9) == -1

    def test_delta_validation(self):
        with pytest.raises(StateError):
            make_delta(-1)
        with pytest.raises(StateError):
            EpochDelta("op", 0, 0, 0, (), -5, 0.0)
