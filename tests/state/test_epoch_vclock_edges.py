"""Edge cases of the epoch ledger and vector clock the protocol leans on.

These pin the behaviours the recovery path and the channel layer assume:
a retransmitted delta after a channel reset dedupes instead of raising,
an epoch *skip* raises instead of deduping, and clock comparisons at
exactly-equal components resolve the way the trigger condition (``>=``)
requires.
"""

import pytest

from repro.common.errors import StateError
from repro.state.epoch import EpochDelta, EpochLedger, EpochManager
from repro.state.vector_clock import VectorClock, WatermarkTracker


def _delta(epoch: int, partition: int = 0, helper: int = 1, watermark: float = 0.0):
    return EpochDelta(
        operator_id="op",
        partition=partition,
        from_executor=helper,
        epoch=epoch,
        pairs=((f"k{epoch}", 1.0),),
        nbytes=64,
        watermark=watermark,
    )


class TestLedgerDedupe:
    def test_duplicate_redelivery_after_channel_reset(self):
        """A reset channel retransmits unacked deltas; the ledger must
        dedupe every re-delivery and then resume the dense sequence."""
        ledger = EpochLedger()
        assert ledger.admit(_delta(0)) is True
        assert ledger.admit(_delta(1)) is True
        # NIC flap: the producer replays everything past its last ack.
        assert ledger.admit(_delta(0)) is False
        assert ledger.admit(_delta(1)) is False
        assert ledger.admit(_delta(1)) is False  # idempotent re-re-delivery
        # The sequence continues where it left off.
        assert ledger.admit(_delta(2)) is True
        assert ledger.last_epoch("op", 0, 1) == 2

    def test_out_of_order_epoch_arrival_raises(self):
        """A skip can only mean loss or reordering on a FIFO channel."""
        ledger = EpochLedger()
        assert ledger.admit(_delta(0)) is True
        with pytest.raises(StateError, match="skip"):
            ledger.admit(_delta(2))

    def test_first_epoch_must_not_skip_zero_floor(self):
        """With a seeded floor, the next admission must be dense."""
        ledger = EpochLedger()
        ledger.seed("op", 0, 1, epoch=4)
        assert ledger.admit(_delta(4)) is False  # replayed at the floor
        assert ledger.admit(_delta(5)) is True
        with pytest.raises(StateError, match="skip"):
            ledger.admit(_delta(7))

    def test_seed_never_moves_backwards(self):
        ledger = EpochLedger()
        ledger.seed("op", 0, 1, epoch=5)
        ledger.seed("op", 0, 1, epoch=3)
        assert ledger.last_epoch("op", 0, 1) == 5
        assert ledger.admit(_delta(5)) is False

    def test_streams_are_independent_per_helper_and_partition(self):
        ledger = EpochLedger()
        assert ledger.admit(_delta(0, partition=0, helper=1)) is True
        assert ledger.admit(_delta(0, partition=1, helper=1)) is True
        assert ledger.admit(_delta(0, partition=0, helper=2)) is True
        # Independent sequences: a dup on one stream leaves the others dense.
        assert ledger.admit(_delta(0, partition=0, helper=1)) is False
        assert ledger.admit(_delta(1, partition=1, helper=1)) is True


class TestEpochManagerEdges:
    def test_force_mid_epoch_then_threshold(self):
        manager = EpochManager(epoch_bytes=100)
        assert manager.offer(40) is False
        assert manager.force() == 0
        assert manager.bytes_into_epoch == 0
        assert manager.offer(99) is False
        assert manager.offer(1) is True
        assert manager.current_epoch == 2

    def test_negative_ingest_rejected(self):
        with pytest.raises(StateError):
            EpochManager(epoch_bytes=100).offer(-1)


class TestClockEqualComponents:
    def test_all_past_is_inclusive_at_equality(self):
        """The trigger condition is >=: a window ending exactly at the
        frontier may fire (no executor can contribute t < its own
        watermark, and a record at exactly t=end is outside [start, end))."""
        clock = VectorClock([0, 1])
        clock.advance(0, 10.0)
        clock.advance(1, 10.0)
        assert clock.min_watermark() == 10.0
        assert clock.all_past(10.0) is True
        assert clock.all_past(10.000001) is False

    def test_equal_advance_is_a_no_op(self):
        clock = VectorClock([0, 1])
        clock.advance(0, 5.0)
        clock.advance(0, 5.0)
        assert clock.entry(0) == 5.0
        # A lower value never regresses the entry either.
        clock.advance(0, 4.0)
        assert clock.entry(0) == 5.0

    def test_merge_with_equal_components_keeps_maximum(self):
        a = VectorClock([0, 1])
        b = VectorClock([0, 1])
        a.advance(0, 3.0)
        a.advance(1, 7.0)
        b.advance(0, 3.0)
        b.advance(1, 2.0)
        a.merge(b)
        assert a.snapshot() == {0: 3.0, 1: 7.0}

    def test_frontier_tracks_slowest_executor(self):
        clock = VectorClock([0, 1, 2])
        clock.advance(0, 100.0)
        clock.advance(1, 50.0)
        assert clock.min_watermark() == float("-inf")  # executor 2 silent
        clock.advance(2, 50.0)
        assert clock.min_watermark() == 50.0


class TestWatermarkTrackerEdges:
    def test_stale_observation_does_not_regress(self):
        tracker = WatermarkTracker(executor_id=0)
        tracker.observe(10.0)
        tracker.observe(4.0)
        assert tracker.watermark == 10.0
        tracker.observe_batch_max(10.0)
        assert tracker.watermark == 10.0
