"""Unit and property tests for the CRDT strategies.

The property tests check the CRDT laws that property P2 of the paper
rests on: merge commutativity/associativity, identity, and the
equivalence of 'partition updates arbitrarily, fold each part, merge'
with a single sequential fold.
"""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StateError
from repro.state.crdt import (
    AppendLogCrdt,
    AvgCrdt,
    CountCrdt,
    MaxCrdt,
    MinCrdt,
    SumCrdt,
    crdt_by_name,
    fold,
)

NUMERIC_CRDTS = [SumCrdt(), CountCrdt(), MinCrdt(), MaxCrdt()]
values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=30
)


def normalized(crdt, payload):
    """Compare payloads through finish() so list order is irrelevant."""
    if isinstance(payload, list):
        return crdt.finish(list(payload))
    return payload


class TestNumericCrdts:
    def test_sum(self):
        crdt = SumCrdt()
        assert fold(crdt, [1, 2, 3]) == 6
        assert crdt.merge(6, 4) == 10

    def test_count_records_and_partials(self):
        crdt = CountCrdt()
        payload = crdt.update(crdt.zero(), "a-record-object-counts-as-one")
        assert payload == 1
        payload = crdt.update(payload, 5)  # pre-aggregated partial
        assert payload == 6

    def test_min_max_identities(self):
        assert MinCrdt().zero() == float("inf")
        assert MaxCrdt().zero() == float("-inf")
        assert fold(MinCrdt(), [3, 1, 2]) == 1
        assert fold(MaxCrdt(), [3, 1, 2]) == 3

    @pytest.mark.parametrize("crdt", NUMERIC_CRDTS, ids=lambda c: c.name)
    @given(values=values_strategy, split=st.integers(min_value=0, max_value=30))
    def test_property_split_merge_equals_sequential(self, crdt, values, split):
        split = min(split, len(values))
        left = fold(crdt, values[:split])
        right = fold(crdt, values[split:])
        assert crdt.merge(left, right) == pytest.approx(fold(crdt, values))

    @pytest.mark.parametrize("crdt", NUMERIC_CRDTS, ids=lambda c: c.name)
    @given(values=values_strategy)
    def test_property_merge_commutative(self, crdt, values):
        half = len(values) // 2
        a = fold(crdt, values[:half])
        b = fold(crdt, values[half:])
        assert crdt.merge(a, b) == pytest.approx(crdt.merge(b, a))

    @pytest.mark.parametrize("crdt", NUMERIC_CRDTS, ids=lambda c: c.name)
    @given(values=values_strategy)
    def test_property_zero_is_identity(self, crdt, values):
        payload = fold(crdt, values)
        assert crdt.merge(payload, crdt.zero()) == pytest.approx(payload)
        assert crdt.merge(crdt.zero(), payload) == pytest.approx(payload)


class TestAvgCrdt:
    def test_scalar_updates(self):
        crdt = AvgCrdt()
        payload = fold(crdt, [2.0, 4.0, 6.0])
        assert payload == (12.0, 3)
        assert crdt.finish(payload) == pytest.approx(4.0)

    def test_partial_updates(self):
        crdt = AvgCrdt()
        payload = crdt.update(crdt.zero(), (10.0, 4))
        assert payload == (10.0, 4)

    def test_merge(self):
        crdt = AvgCrdt()
        assert crdt.merge((10.0, 2), (20.0, 3)) == (30.0, 5)

    def test_empty_finish_raises(self):
        with pytest.raises(StateError):
            AvgCrdt().finish((0.0, 0))

    @given(values=values_strategy, split=st.integers(min_value=0, max_value=30))
    def test_property_distributed_mean_exact(self, values, split):
        crdt = AvgCrdt()
        split = min(split, len(values))
        merged = crdt.merge(fold(crdt, values[:split]), fold(crdt, values[split:]))
        assert crdt.finish(merged) == pytest.approx(sum(values) / len(values))


class TestAppendLogCrdt:
    def test_update_single_and_list(self):
        crdt = AppendLogCrdt()
        payload = crdt.update(crdt.zero(), 1)
        payload = crdt.update(payload, [2, 3])
        assert payload == [1, 2, 3]

    def test_merge_concatenates(self):
        crdt = AppendLogCrdt()
        assert crdt.finish(crdt.merge([1, 3], [2])) == [1, 2, 3]

    def test_value_bytes_grows_with_records(self):
        crdt = AppendLogCrdt(record_bytes=32)
        assert crdt.value_bytes([1, 2, 3]) == 8 + 96

    @given(st.lists(st.integers(), max_size=20), st.lists(st.integers(), max_size=20))
    def test_property_merge_is_multiset_union(self, a, b):
        crdt = AppendLogCrdt()
        merged = crdt.finish(crdt.merge(list(a), list(b)))
        assert merged == sorted(a + b)


def test_registry_lookup():
    assert crdt_by_name("sum").name == "sum"
    assert crdt_by_name("append").name == "append"


def test_registry_unknown_raises():
    with pytest.raises(StateError, match="unknown CRDT"):
        crdt_by_name("median")
