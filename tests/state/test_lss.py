"""Tests for the hash index and the hybrid-log store."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StateError
from repro.state.crdt import AppendLogCrdt, SumCrdt
from repro.state.hash_index import HashIndex
from repro.state.lss import LogStructuredStore


class TestHashIndex:
    def test_put_get(self):
        index = HashIndex()
        index.put("a", 0)
        assert index.get("a") == 0
        assert index.get("b") is None
        assert "a" in index
        assert len(index) == 1

    def test_move(self):
        index = HashIndex()
        index.put("a", 0)
        index.put("a", 5)
        assert index.get("a") == 5
        assert index.inserts == 1

    def test_remove_absent_raises(self):
        with pytest.raises(StateError):
            HashIndex().remove("x")

    def test_negative_address_rejected(self):
        with pytest.raises(StateError):
            HashIndex().put("a", -1)

    def test_size_bytes_scales(self):
        index = HashIndex()
        for i in range(10):
            index.put(i, i)
        assert index.size_bytes == 160


class TestLogStructuredStore:
    def test_rmw_from_zero(self):
        store = LogStructuredStore(SumCrdt())
        store.update("k", 5)
        store.update("k", 3)
        assert store.get("k") == 8
        assert len(store) == 1

    def test_absorb_merges_partials(self):
        store = LogStructuredStore(SumCrdt())
        store.absorb("k", 10)
        store.absorb("k", 7)
        assert store.get("k") == 17

    def test_in_place_update_in_mutable_region(self):
        store = LogStructuredStore(SumCrdt())
        store.update("k", 1)
        store.update("k", 1)
        assert store.log_length == 1  # updated in place, no new version

    def test_copy_on_write_below_boundary(self):
        store = LogStructuredStore(SumCrdt())
        store.update("k", 1)
        store.mark_readonly()
        store.update("k", 2)
        assert store.get("k") == 3
        assert store.log_length == 2  # a new version was appended

    def test_remove_returns_payload(self):
        store = LogStructuredStore(SumCrdt())
        store.update("k", 4)
        assert store.remove("k") == 4
        assert store.get("k") is None
        with pytest.raises(StateError):
            store.remove("k")

    def test_replace(self):
        store = LogStructuredStore(SumCrdt())
        store.replace("k", 42)
        assert store.get("k") == 42
        store.replace("k", 43)
        assert store.get("k") == 43
        store.mark_readonly()
        store.replace("k", 44)
        assert store.get("k") == 44

    def test_scan_live_only(self):
        store = LogStructuredStore(SumCrdt())
        store.update("a", 1)
        store.update("b", 2)
        store.remove("a")
        assert dict(store.scan()) == {"b": 2}

    def test_keys_matching(self):
        store = LogStructuredStore(SumCrdt())
        store.update((1, "a"), 1)
        store.update((2, "a"), 1)
        store.update((1, "b"), 1)
        keys = store.keys_matching(lambda k: k[0] == 1)
        assert sorted(keys) == [(1, "a"), (1, "b")]

    def test_delta_contains_only_changes_since_boundary(self):
        store = LogStructuredStore(SumCrdt())
        store.update("old", 1)
        store.mark_readonly()
        store.update("new", 2)
        assert store.delta_pairs() == [("new", 2)]

    def test_delta_includes_cow_of_old_keys(self):
        store = LogStructuredStore(SumCrdt())
        store.update("k", 1)
        store.mark_readonly()
        store.update("k", 2)
        assert store.delta_pairs() == [("k", 3)]

    def test_ship_delta_resets_fragment(self):
        """After shipping, RMWs restart from zero (paper Sec. 7.2.2)."""
        store = LogStructuredStore(SumCrdt())
        store.update("k", 5)
        store.update("k", 2)
        pairs, nbytes = store.ship_delta()
        assert pairs == [("k", 7)]
        assert nbytes > 0
        assert store.get("k") is None
        store.update("k", 1)
        assert store.get("k") == 1

    def test_ship_delta_empty(self):
        store = LogStructuredStore(SumCrdt())
        pairs, nbytes = store.ship_delta()
        assert pairs == []
        assert nbytes == 0

    def test_delta_bytes_append_crdt_scales_with_records(self):
        store = LogStructuredStore(AppendLogCrdt(record_bytes=100))
        store.update("k", "r1")
        store.update("k", "r2")
        assert store.delta_bytes() == 8 + 8 + (8 + 200)

    def test_compaction_preserves_content(self):
        store = LogStructuredStore(SumCrdt(), compact_threshold=0.5)
        for i in range(20):
            store.update(i, 1)
        for i in range(15):
            store.remove(i)
        assert store.compactions >= 1
        assert dict(store.scan()) == {i: 1 for i in range(15, 20)}
        # Post-compaction updates still work.
        store.update(15, 1)
        assert store.get(15) == 2

    def test_compaction_preserves_boundary_semantics(self):
        store = LogStructuredStore(SumCrdt(), compact_threshold=0.4)
        store.update("frozen", 1)
        store.mark_readonly()
        for i in range(10):
            store.update(i, 1)
        for i in range(10):
            store.remove(i)
        # "frozen" is below the boundary: an update must copy-on-write.
        length_before = store.log_length
        store.update("frozen", 1)
        assert store.get("frozen") == 2
        assert store.log_length == length_before + 1

    def test_size_bytes(self):
        store = LogStructuredStore(SumCrdt())
        assert store.size_bytes == 0
        store.update("k", 1)
        assert store.size_bytes > 0

    def test_bad_compact_threshold(self):
        with pytest.raises(StateError):
            LogStructuredStore(SumCrdt(), compact_threshold=0.0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)),
            min_size=1,
            max_size=100,
        ),
        st.lists(st.integers(0, 99), max_size=5),
    )
    def test_property_store_matches_dict_with_boundaries(self, updates, boundary_points):
        """Interleaving mark_readonly anywhere never changes visible state."""
        store = LogStructuredStore(SumCrdt())
        reference: dict[int, float] = {}
        boundary_set = set(boundary_points)
        for i, (key, value) in enumerate(updates):
            if i in boundary_set:
                store.mark_readonly()
            store.update(key, value)
            reference[key] = reference.get(key, 0.0) + value
        for key, expected in reference.items():
            assert store.get(key) == pytest.approx(expected)
