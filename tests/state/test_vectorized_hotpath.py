"""Property tests: the vectorized state hot path matches the scalar path.

The PR's batched fast path (``stable_hash_array``/``partition_array``
routing plus ``LogStructuredStore.absorb_many`` group-by) must be
*observationally identical* to the per-key scalar path — same hashes,
same partition ownership, same final store state — on both uniform and
heavily skewed (Zipf) key batches.
"""

import numpy as np
import pytest

from repro.state.crdt import SumCrdt
from repro.state.lss import LogStructuredStore
from repro.state.partition import (
    KeyPartitioner,
    PartitionDirectory,
    stable_hash,
    stable_hash_array,
)
from repro.state.ssb import SlashStateBackend


BATCH_NAMES = ("edges", "negative", "uniform", "zipf")


@pytest.fixture(scope="session")
def key_batches(rng_tree):
    """Named (uniform, zipf, negative, adversarial) int64 key batches."""
    rng = rng_tree.generator("state", "hotpath-keys")
    uniform = rng.integers(0, 100_000, size=4096, dtype=np.int64)
    zipf = (rng.zipf(1.3, size=4096) % 100_000).astype(np.int64)
    negative = rng.integers(-(2**62), 2**62, size=1024, dtype=np.int64)
    edges = np.array(
        [0, 1, -1, 2**63 - 1, -(2**63), 42, -42], dtype=np.int64
    )
    return {"uniform": uniform, "zipf": zipf, "negative": negative, "edges": edges}


@pytest.mark.parametrize("batch_name", BATCH_NAMES)
def test_stable_hash_array_matches_scalar(key_batches, batch_name):
    keys = key_batches[batch_name]
    vectorized = stable_hash_array(keys)
    scalar = [stable_hash(int(k)) for k in keys.tolist()]
    assert vectorized.tolist() == scalar


@pytest.mark.parametrize("batch_name", BATCH_NAMES)
@pytest.mark.parametrize("partitions", [1, 4, 7, 16])
def test_partition_array_matches_scalar(key_batches, batch_name, partitions):
    keys = key_batches[batch_name]
    partitioner = KeyPartitioner(partitions)
    vectorized = partitioner.partition_array(keys)
    scalar = [partitioner.partition_of(int(k)) for k in keys.tolist()]
    assert vectorized.tolist() == scalar
    assert vectorized.min() >= 0 and vectorized.max() < partitions


def _pairs_from(keys: np.ndarray, windows: int = 8):
    """Zipf/uniform keys -> ((window, key), partial) state pairs."""
    return [
        ((int(k) % windows, int(k)), float(i % 13) + 1.0)
        for i, k in enumerate(keys.tolist())
    ]


@pytest.mark.parametrize("batch_name", ["uniform", "zipf"])
def test_absorb_many_matches_scalar_absorb(key_batches, batch_name):
    pairs = _pairs_from(key_batches[batch_name])
    split = len(pairs) // 2

    batched = LogStructuredStore(SumCrdt(), name="batched")
    reference = LogStructuredStore(SumCrdt(), name="reference")

    # First half, then freeze the boundary so the second half exercises
    # the copy-on-write path for recurring keys.
    batched.absorb_many(pairs[:split])
    for key, partial in pairs[:split]:
        reference.absorb(key, partial)
    batched.mark_readonly()
    reference.mark_readonly()
    batched.absorb_many(pairs[split:])
    for key, partial in pairs[split:]:
        reference.absorb(key, partial)

    assert dict(batched.scan()) == dict(reference.scan())
    assert len(batched) == len(reference)
    assert batched.index.lookups == reference.index.lookups
    assert batched.index.inserts == reference.index.inserts
    assert sorted(batched.delta_pairs()) == sorted(reference.delta_pairs())


@pytest.mark.parametrize("batch_name", ["uniform", "zipf"])
def test_absorb_batch_matches_scalar_routing(key_batches, batch_name):
    pairs = _pairs_from(key_batches[batch_name])
    partials = {}
    for key, partial in pairs:
        partials[key] = partials.get(key, 0.0) + partial

    directory = PartitionDirectory(4)
    batched = SlashStateBackend(0, directory).handle("op", SumCrdt())
    reference = SlashStateBackend(0, PartitionDirectory(4)).handle("op", SumCrdt())

    batched.absorb_batch(partials)
    for key, partial in partials.items():
        reference.absorb(key, partial)

    for partition in range(4):
        assert dict(batched.store_for(partition).scan()) == dict(
            reference.store_for(partition).scan()
        ), f"partition {partition} diverged"


def test_absorb_batch_string_keys_fall_back_to_scalar_path():
    """Non-integer group keys must route through the scalar partitioner."""
    partials = {f"user-{i}": float(i) for i in range(257)}
    directory = PartitionDirectory(4)
    batched = SlashStateBackend(0, directory).handle("op", SumCrdt())
    reference = SlashStateBackend(0, PartitionDirectory(4)).handle("op", SumCrdt())

    batched.absorb_batch(partials)
    for key, partial in partials.items():
        reference.absorb(key, partial)

    for partition in range(4):
        assert dict(batched.store_for(partition).scan()) == dict(
            reference.store_for(partition).scan()
        )


def test_ship_delta_resets_fragment_like_before():
    """The truncating ship keeps the documented post-ship semantics:
    shipped keys are dropped and the next RMW restarts from zero."""
    store = LogStructuredStore(SumCrdt())
    store.absorb_many([(k, 1.0) for k in range(10)])
    pairs, nbytes = store.ship_delta()
    assert sorted(k for k, _v in pairs) == list(range(10))
    assert nbytes > 0
    assert len(store) == 0
    assert store.delta_pairs() == []
    # Post-ship RMW restarts from the CRDT zero.
    store.absorb(3, 5.0)
    assert store.get(3) == 5.0
