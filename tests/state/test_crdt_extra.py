"""Additional CRDT edge cases: identity laws under merges with zero,
mixed partial/raw updates, and byte-size accounting used for pricing."""

import pytest
from hypothesis import given, strategies as st

from repro.state.crdt import (
    AppendLogCrdt,
    AvgCrdt,
    CountCrdt,
    MaxCrdt,
    MinCrdt,
    SumCrdt,
    fold,
)


def test_min_of_only_zeros_is_identity():
    crdt = MinCrdt()
    assert crdt.merge(crdt.zero(), crdt.zero()) == float("inf")


def test_max_update_with_negative_values():
    crdt = MaxCrdt()
    payload = fold(crdt, [-5.0, -2.0, -9.0])
    assert payload == -2.0


def test_count_mixed_partials_and_records():
    crdt = CountCrdt()
    payload = crdt.zero()
    payload = crdt.update(payload, "record")      # +1
    payload = crdt.update(payload, 7)              # pre-aggregated +7
    payload = crdt.update(payload, 2.0)            # numeric partial +2
    assert payload == 10


def test_avg_merge_with_zero_payload():
    crdt = AvgCrdt()
    payload = crdt.merge(crdt.zero(), (6.0, 3))
    assert crdt.finish(payload) == pytest.approx(2.0)


def test_append_value_bytes_of_empty():
    crdt = AppendLogCrdt(record_bytes=64)
    assert crdt.value_bytes([]) == 8


def test_scalar_payload_bytes_constant():
    assert SumCrdt().value_bytes(1e12) == SumCrdt().value_bytes(0.0)
    assert AvgCrdt().payload_bytes > SumCrdt().payload_bytes  # pair vs scalar


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20))
def test_property_avg_never_divides_by_zero_after_updates(values):
    crdt = AvgCrdt()
    payload = fold(crdt, values)
    result = crdt.finish(payload)
    assert result == pytest.approx(sum(values) / len(values))


@given(
    st.lists(st.integers(0, 100), max_size=15),
    st.lists(st.integers(0, 100), max_size=15),
    st.lists(st.integers(0, 100), max_size=15),
)
def test_property_append_merge_associative(a, b, c):
    crdt = AppendLogCrdt()
    left = crdt.merge(crdt.merge(list(a), list(b)), list(c))
    right = crdt.merge(list(a), crdt.merge(list(b), list(c)))
    assert crdt.finish(left) == crdt.finish(right)
