"""Tests for epoch-aligned SSB snapshots (extension)."""

import pytest

from repro.common.errors import StateError
from repro.state.crdt import AppendLogCrdt, SumCrdt
from repro.state.partition import PartitionDirectory
from repro.state.ssb import SlashStateBackend


def make_backend(n=2, executor=0, crdt=None):
    backend = SlashStateBackend(executor, PartitionDirectory(n))
    handle = backend.handle("agg", crdt or SumCrdt())
    return backend, handle


def test_snapshot_roundtrip():
    backend, handle = make_backend()
    handle.update((1, "a"), 10)
    handle.update((1, "b"), 20)
    backend.observe_watermark(123.0)
    snap = backend.snapshot()

    fresh_backend, fresh_handle = make_backend()
    fresh_backend.restore(snap)
    assert fresh_handle.get_local((1, "a")) == 10
    assert fresh_handle.get_local((1, "b")) == 20
    assert fresh_backend.watermarks.watermark == 123.0
    assert fresh_backend.clock.entry(0) == 123.0


def test_snapshot_is_isolated_from_later_mutation():
    backend, handle = make_backend()
    handle.update("k", 5)
    snap = backend.snapshot()
    handle.update("k", 100)  # post-snapshot mutation

    fresh_backend, fresh_handle = make_backend()
    fresh_backend.restore(snap)
    assert fresh_handle.get_local("k") == 5


def test_snapshot_deepcopies_holistic_payloads():
    backend, handle = make_backend(crdt=AppendLogCrdt())
    handle.update("k", "r1")
    snap = backend.snapshot()
    handle.update("k", "r2")  # appends to the SAME list object in the store

    fresh_backend, fresh_handle = make_backend(crdt=AppendLogCrdt())
    fresh_backend.restore(snap)
    assert fresh_handle.get_local("k") == ["r1"]


def test_restore_replaces_existing_state():
    backend, handle = make_backend()
    handle.update("old", 1)
    snap = backend.snapshot()
    fresh_backend, fresh_handle = make_backend()
    fresh_handle.update("junk", 999)
    fresh_backend.restore(snap)
    assert fresh_handle.get_local("junk") is None
    assert fresh_handle.get_local("old") == 1


def test_restore_wrong_executor_rejected():
    backend, _ = make_backend(executor=0)
    snap = backend.snapshot()
    other, _ = make_backend(executor=1)
    with pytest.raises(StateError, match="snapshot of executor"):
        other.restore(snap)


def test_restore_unregistered_operator_rejected():
    backend, _ = make_backend()
    snap = backend.snapshot()
    fresh = SlashStateBackend(0, PartitionDirectory(2))
    with pytest.raises(StateError, match="unregistered operator"):
        fresh.restore(snap)


def test_snapshot_covers_all_partitions():
    backend, handle = make_backend(n=4)
    # Spread keys over partitions.
    for key in range(40):
        handle.update((0, key), 1)
    snap = backend.snapshot()
    total = sum(len(pairs) for pairs in snap["operators"]["agg"].values())
    assert total == 40
