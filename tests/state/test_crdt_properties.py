"""Property-based CRDT law checks, seeded via :mod:`repro.common.rng`.

Every CRDT in the registry must satisfy the algebra its base class
documents: ``merge`` commutative and associative with identity
``zero()``, and any split-fold-merge regrouping equal to one sequential
fold (the distribution property Slash's lazy merging relies on, paper
Sec. 5.1 / property P2).  Idempotence additionally holds for the
semilattice CRDTs (min/max) — and deliberately NOT for the counting
ones, which the suite pins down too, since exactly-once delivery is
what the epoch ledger exists to provide.

Payload equality for the append CRDT goes through ``finish`` (which
sorts): list concatenation is only commutative up to the ordering
``finish`` normalises away.
"""

import pytest

from repro.common.rng import RngTree
from repro.state.crdt import (
    AppendLogCrdt,
    AvgCrdt,
    CountCrdt,
    MaxCrdt,
    MinCrdt,
    SumCrdt,
    crdt_by_name,
    fold,
)

CRDT_NAMES = ("sum", "count", "min", "max", "avg", "append")
ROUNDS = 50


def _values(name: str, rng, n: int) -> list:
    """Random stream values a pipeline would feed this CRDT's update."""
    if name == "append":
        return [
            (int(ts), int(rng.integers(0, 8)), round(float(price), 2))
            for ts, price in zip(
                rng.integers(0, 10_000, size=n), rng.uniform(1.0, 100.0, size=n)
            )
        ]
    if name == "count":
        return [1] * n
    return [round(float(v), 3) for v in rng.uniform(-100.0, 100.0, size=n)]


def _payloads(name: str, rng, count: int, size: int = 8) -> list:
    """Random partial payloads (each the fold of a few stream values)."""
    crdt = crdt_by_name(name)
    return [
        fold(crdt, _values(name, rng, int(rng.integers(1, size + 1))))
        for _ in range(count)
    ]


def _canon(crdt, payload):
    """Comparable form of a payload (sorts append logs, rounds floats)."""
    if isinstance(payload, list):
        return sorted(payload)
    if isinstance(payload, tuple):
        return tuple(round(c, 9) if isinstance(c, float) else c for c in payload)
    if isinstance(payload, float):
        return round(payload, 9)
    return payload


@pytest.fixture(params=CRDT_NAMES)
def crdt_case(request, rng_tree):
    name = request.param
    return name, crdt_by_name(name), rng_tree.generator("crdt-properties", name)


class TestMergeAlgebra:
    def test_commutative(self, crdt_case):
        name, crdt, rng = crdt_case
        for _ in range(ROUNDS):
            a, b = _payloads(name, rng, 2)
            assert _canon(crdt, crdt.merge(a, b)) == _canon(crdt, crdt.merge(b, a))

    def test_associative(self, crdt_case):
        name, crdt, rng = crdt_case
        for _ in range(ROUNDS):
            a, b, c = _payloads(name, rng, 3)
            left = crdt.merge(crdt.merge(a, b), c)
            right = crdt.merge(a, crdt.merge(b, c))
            assert _canon(crdt, left) == _canon(crdt, right)

    def test_zero_is_identity(self, crdt_case):
        name, crdt, rng = crdt_case
        for _ in range(ROUNDS):
            (a,) = _payloads(name, rng, 1)
            assert _canon(crdt, crdt.merge(crdt.zero(), a)) == _canon(crdt, a)
            assert _canon(crdt, crdt.merge(a, crdt.zero())) == _canon(crdt, a)


class TestFoldDistribution:
    def test_split_fold_merge_equals_sequential_fold(self, crdt_case):
        """Any partition of the stream folds to the same merged payload."""
        name, crdt, rng = crdt_case
        for _ in range(ROUNDS):
            values = _values(name, rng, int(rng.integers(2, 40)))
            sequential = fold(crdt, values)
            cuts = sorted(
                int(c) for c in rng.integers(0, len(values) + 1, size=2)
            )
            parts = [values[: cuts[0]], values[cuts[0] : cuts[1]], values[cuts[1] :]]
            merged = crdt.zero()
            for part in parts:
                merged = crdt.merge(merged, fold(crdt, part))
            assert _canon(crdt, merged) == _canon(crdt, sequential)


class TestIdempotence:
    @pytest.mark.parametrize("crdt", [MinCrdt(), MaxCrdt()], ids=["min", "max"])
    def test_semilattice_merge_is_idempotent(self, crdt, rng):
        for _ in range(ROUNDS):
            a = fold(crdt, [float(v) for v in rng.uniform(-10, 10, size=4)])
            assert crdt.merge(a, a) == a

    @pytest.mark.parametrize(
        "crdt", [SumCrdt(), CountCrdt(), AvgCrdt(), AppendLogCrdt()],
        ids=["sum", "count", "avg", "append"],
    )
    def test_counting_merge_is_not_idempotent(self, crdt):
        """Re-merging a duplicate changes these payloads — the property
        that makes the ledger's exactly-once filtering load-bearing."""
        a = fold(crdt, [2.0, 3.0])
        assert _canon(crdt, crdt.merge(a, a)) != _canon(crdt, a)


class TestMergeInto:
    def test_merge_into_equals_pairwise_merge(self, crdt_case):
        """The inlined numeric hot loops match the generic per-key merge."""
        name, crdt, rng = crdt_case
        for _ in range(ROUNDS):
            keys = [int(k) for k in rng.integers(0, 10, size=12)]
            state = {k: p for k, p in zip(keys[:6], _payloads(name, rng, 6))}
            partials = {k: p for k, p in zip(keys[6:], _payloads(name, rng, 6))}
            expected = dict(state)
            for key, partial in partials.items():
                expected[key] = (
                    crdt.merge(expected[key], partial)
                    if key in expected
                    else partial
                )
            crdt.merge_into(state, partials)
            assert {k: _canon(crdt, v) for k, v in state.items()} == {
                k: _canon(crdt, v) for k, v in expected.items()
            }


class TestStoreAbsorb:
    def test_absorb_many_equals_pairwise_merge(self, crdt_case):
        """absorb_many through the log store equals merging by hand."""
        from repro.state.lss import LogStructuredStore

        name, crdt, rng = crdt_case
        for _ in range(10):
            keys = [int(k) for k in rng.integers(0, 6, size=10)]
            pairs = list(zip(keys, _payloads(name, rng, 10)))
            store = LogStructuredStore(crdt, name=f"prop-{name}")
            store.absorb_many(pairs)
            expected: dict = {}
            for key, partial in pairs:
                expected[key] = (
                    crdt.merge(expected[key], partial)
                    if key in expected
                    else partial
                )
            assert {k: _canon(crdt, v) for k, v in store.scan()} == {
                k: _canon(crdt, v) for k, v in expected.items()
            }
