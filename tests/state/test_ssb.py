"""Tests for the Slash State Backend facade.

The central property here is P2: distributing updates across executors,
shipping epoch deltas to leaders, and merging must reproduce exactly the
state a sequential execution would have built.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StateError
from repro.state.crdt import AppendLogCrdt, CountCrdt, SumCrdt, fold
from repro.state.partition import PartitionDirectory
from repro.state.ssb import SlashStateBackend


def make_backends(n):
    directory = PartitionDirectory(n)
    return directory, [SlashStateBackend(e, directory) for e in range(n)]


def sync_epoch(handles):
    """Run one full epoch synchronisation across all executors."""
    for handle in handles:
        for delta in handle.collect_deltas():
            leader = delta.partition  # identity leadership
            handles[leader].merge_delta(delta)


def merged_view(handles, crdt):
    """Union of all leaders' led items, fully merged."""
    view = {}
    for handle in handles:
        for key, payload in handle.led_items():
            if key in view:
                view[key] = crdt.merge(view[key], payload)
            else:
                view[key] = payload
    return view


class TestHandleBasics:
    def test_update_routes_to_partition_of_group_key(self):
        directory, backends = make_backends(4)
        handle = backends[0].handle("agg", SumCrdt())
        handle.update((7, "group"), 1.0)
        partition = directory.partitioner("group")
        assert handle.store_for(partition).get((7, "group")) == 1.0

    def test_bare_key_and_tuple_key_share_partition(self):
        _, backends = make_backends(4)
        handle = backends[0].handle("agg", SumCrdt())
        assert handle.partition_of("g") == handle.partition_of((3, "g"))

    def test_handle_reuse_and_crdt_conflict(self):
        _, backends = make_backends(2)
        backend = backends[0]
        first = backend.handle("agg", SumCrdt())
        assert backend.handle("agg", SumCrdt()) is first
        with pytest.raises(StateError, match="different CRDT"):
            backend.handle("agg", CountCrdt())

    def test_invalid_executor_id(self):
        directory = PartitionDirectory(2)
        with pytest.raises(StateError):
            SlashStateBackend(5, directory)

    def test_observe_watermark_advances_clock(self):
        _, backends = make_backends(2)
        backends[0].observe_watermark(123.0)
        assert backends[0].watermarks.watermark == 123.0
        assert backends[0].clock.entry(0) == 123.0


class TestEpochSync:
    def test_deltas_cover_all_remote_partitions(self):
        _, backends = make_backends(4)
        handle = backends[1].handle("agg", SumCrdt())
        deltas = handle.collect_deltas()
        assert sorted(d.partition for d in deltas) == [0, 2, 3]
        assert all(d.from_executor == 1 for d in deltas)
        assert all(d.epoch == 0 for d in deltas)
        # Empty deltas still carry the header bytes (watermark piggyback).
        assert all(d.nbytes >= 32 for d in deltas)

    def test_epoch_numbers_increment_per_partition(self):
        _, backends = make_backends(2)
        handle = backends[0].handle("agg", SumCrdt())
        first = handle.collect_deltas()
        second = handle.collect_deltas()
        assert first[0].epoch == 0
        assert second[0].epoch == 1

    def test_merge_delta_validates_leadership(self):
        _, backends = make_backends(3)
        helper = backends[1].handle("agg", SumCrdt())
        deltas = helper.collect_deltas()
        wrong_leader = backends[2].handle("agg", SumCrdt())
        bad = next(d for d in deltas if d.partition == 0)
        with pytest.raises(StateError, match="not the leader"):
            wrong_leader.merge_delta(bad)

    def test_merge_delta_validates_operator(self):
        _, backends = make_backends(2)
        helper = backends[1].handle("agg", SumCrdt())
        (delta,) = helper.collect_deltas()
        other = backends[0].handle("other", SumCrdt())
        with pytest.raises(StateError, match="operator"):
            other.merge_delta(delta)

    def test_watermark_piggybacks_to_leader_clock(self):
        _, backends = make_backends(2)
        backends[1].observe_watermark(55.0)
        helper = backends[1].handle("agg", SumCrdt())
        leader = backends[0].handle("agg", SumCrdt())
        for delta in helper.collect_deltas():
            leader.merge_delta(delta)
        assert backends[0].clock.entry(1) == 55.0

    def test_two_executor_sum_converges(self):
        _, backends = make_backends(2)
        handles = [b.handle("agg", SumCrdt()) for b in backends]
        # Both executors update the same key concurrently.
        handles[0].update("k", 10)
        handles[1].update("k", 32)
        sync_epoch(handles)
        view = merged_view(handles, SumCrdt())
        assert view == {"k": 42}

    def test_multi_epoch_accumulation(self):
        _, backends = make_backends(2)
        handles = [b.handle("agg", SumCrdt()) for b in backends]
        for epoch in range(3):
            handles[0].update("k", 1)
            handles[1].update("k", 2)
            sync_epoch(handles)
        assert merged_view(handles, SumCrdt()) == {"k": 9}

    def test_append_crdt_state_converges(self):
        _, backends = make_backends(2)
        crdt = AppendLogCrdt()
        handles = [b.handle("join", crdt) for b in backends]
        handles[0].update("k", "left-record")
        handles[1].update("k", "right-record")
        sync_epoch(handles)
        view = merged_view(handles, crdt)
        assert crdt.finish(view["k"]) == ["left-record", "right-record"]


class TestWindowExtraction:
    def test_extract_window_pops_only_that_window(self):
        _, backends = make_backends(1)
        handle = backends[0].handle("agg", SumCrdt())
        handle.update((1, "a"), 1)
        handle.update((1, "b"), 2)
        handle.update((2, "a"), 3)
        result = handle.extract_window(1)
        assert result == {"a": 1, "b": 2}
        assert dict(handle.led_items()) == {(2, "a"): 3}

    def test_extract_window_distributed(self):
        _, backends = make_backends(2)
        handles = [b.handle("agg", SumCrdt()) for b in backends]
        keys = list(range(20))
        for key in keys:
            handles[0].update((1, key), 1)
            handles[1].update((1, key), 1)
        sync_epoch(handles)
        combined = {}
        for handle in handles:
            combined.update(handle.extract_window(1))
        assert combined == {key: 2 for key in keys}

    def test_replace_and_remove_led(self):
        _, backends = make_backends(1)
        handle = backends[0].handle("agg", SumCrdt())
        handle.update("k", 1)
        handle.replace_led("k", 100)
        assert handle.get_local("k") == 100
        assert handle.remove_led("k") == 100

    def test_replace_led_rejects_foreign_keys(self):
        directory, backends = make_backends(2)
        handle = backends[0].handle("agg", SumCrdt())
        foreign = next(k for k in range(100) if directory.partitioner(k) != 0)
        with pytest.raises(StateError, match="not led"):
            handle.replace_led(foreign, 1)


class TestP2Property:
    @settings(max_examples=30, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(0, 3),        # executor that sees the record
                st.integers(0, 10),        # group key
                st.integers(-100, 100),    # value
            ),
            min_size=1,
            max_size=200,
        ),
        epoch_points=st.sets(st.integers(0, 199), max_size=6),
    )
    def test_distributed_equals_sequential(self, updates, epoch_points):
        """P2: lazy-merged distributed state == sequential fold, with
        epoch boundaries injected at arbitrary points mid-stream."""
        _, backends = make_backends(4)
        handles = [b.handle("agg", SumCrdt()) for b in backends]
        reference: dict[int, float] = {}
        for i, (executor, key, value) in enumerate(updates):
            if i in epoch_points:
                sync_epoch(handles)
            handles[executor].update(key, value)
            reference[key] = reference.get(key, 0.0) + value
        sync_epoch(handles)
        view = merged_view(handles, SumCrdt())
        assert set(view) == set(reference)
        for key, expected in reference.items():
            assert view[key] == pytest.approx(expected)
