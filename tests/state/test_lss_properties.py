"""Property tests: hybrid-log store under randomized op sequences.

Hypothesis drives arbitrary interleavings of updates, absorbs, removals,
boundary advances, and delta shipments against a plain-dict reference
model; the store must agree at every observation point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.state.crdt import AppendLogCrdt, SumCrdt
from repro.state.lss import LogStructuredStore

ops = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 7), st.integers(-50, 50)),
        st.tuples(st.just("absorb"), st.integers(0, 7), st.integers(-50, 50)),
        st.tuples(st.just("remove"), st.integers(0, 7), st.none()),
        st.tuples(st.just("mark_readonly"), st.none(), st.none()),
        st.tuples(st.just("ship"), st.none(), st.none()),
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(sequence=ops)
def test_property_store_tracks_model_through_ships(sequence):
    """The store's visible content equals a dict model where shipping
    moves the whole current content into a 'shipped' accumulator."""
    store = LogStructuredStore(SumCrdt(), compact_threshold=0.4)
    model: dict[int, float] = {}
    shipped: dict[int, float] = {}

    for op, key, value in sequence:
        if op == "update":
            store.update(key, value)
            model[key] = model.get(key, 0.0) + value
        elif op == "absorb":
            store.absorb(key, value)
            model[key] = model.get(key, 0.0) + value
        elif op == "remove":
            if key in model:
                assert store.remove(key) == pytest.approx(model.pop(key))
            else:
                assert store.get(key) is None
        elif op == "mark_readonly":
            store.mark_readonly()
        elif op == "ship":
            pairs, nbytes = store.ship_delta()
            assert nbytes >= 0
            for k, payload in pairs:
                shipped[k] = shipped.get(k, 0.0) + payload
                # Shipped pairs leave the store entirely.
                model.pop(k, None)

        # Invariant: visible content equals the model at every step.
        assert dict(store.scan()) == pytest.approx(model)

    # The resident content equals the model's surviving updates.
    store_total = sum(payload for _k, payload in store.scan())
    assert store_total == pytest.approx(sum(model.values()))


@settings(max_examples=40, deadline=None)
@given(
    appends=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 999)), max_size=60
    ),
    ship_points=st.sets(st.integers(0, 59), max_size=4),
)
def test_property_append_log_conservation(appends, ship_points):
    """For holistic payloads, shipping + merging loses no record and
    duplicates none (the multiset of records is conserved)."""
    crdt = AppendLogCrdt()
    helper = LogStructuredStore(crdt, compact_threshold=0.5)
    leader = LogStructuredStore(crdt, compact_threshold=0.5)
    expected: dict[int, list[int]] = {}
    for i, (key, record) in enumerate(appends):
        if i in ship_points:
            pairs, _nbytes = helper.ship_delta()
            for k, payload in pairs:
                leader.absorb(k, payload)
        helper.update(key, record)
        expected.setdefault(key, []).append(record)
    pairs, _nbytes = helper.ship_delta()
    for k, payload in pairs:
        leader.absorb(k, payload)
    merged = {k: sorted(v) for k, v in leader.scan()}
    assert merged == {k: sorted(v) for k, v in expected.items()}
