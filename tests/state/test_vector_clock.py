"""Tests for watermark tracking and vector clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StateError
from repro.state.vector_clock import VectorClock, WatermarkTracker


class TestWatermarkTracker:
    def test_starts_at_minus_inf(self):
        assert WatermarkTracker(0).watermark == float("-inf")

    def test_advances_monotonically(self):
        tracker = WatermarkTracker(0)
        tracker.observe(10)
        tracker.observe(5)  # out-of-order record must not regress
        assert tracker.watermark == 10
        tracker.observe_batch_max(20)
        assert tracker.watermark == 20


class TestVectorClock:
    def test_requires_executors(self):
        with pytest.raises(StateError):
            VectorClock([])

    def test_rejects_duplicates(self):
        with pytest.raises(StateError):
            VectorClock([1, 1])

    def test_advance_and_entry(self):
        clock = VectorClock([0, 1])
        clock.advance(0, 100)
        assert clock.entry(0) == 100
        assert clock.entry(1) == float("-inf")

    def test_advance_never_regresses(self):
        clock = VectorClock([0])
        clock.advance(0, 100)
        clock.advance(0, 50)
        assert clock.entry(0) == 100

    def test_unknown_executor_rejected(self):
        clock = VectorClock([0])
        with pytest.raises(StateError):
            clock.advance(3, 1)
        with pytest.raises(StateError):
            clock.entry(3)

    def test_min_watermark_is_frontier(self):
        clock = VectorClock([0, 1, 2])
        clock.advance(0, 100)
        clock.advance(1, 50)
        clock.advance(2, 75)
        assert clock.min_watermark() == 50

    def test_all_past_trigger_condition(self):
        """A window triggers only when every executor has passed its end."""
        clock = VectorClock([0, 1])
        clock.advance(0, 100)
        assert not clock.all_past(60)  # executor 1 still at -inf
        clock.advance(1, 59)
        assert not clock.all_past(60)
        clock.advance(1, 60)
        assert clock.all_past(60)

    def test_merge_elementwise_max(self):
        a = VectorClock([0, 1])
        b = VectorClock([0, 1])
        a.advance(0, 10)
        b.advance(0, 5)
        b.advance(1, 20)
        a.merge(b)
        assert a.entry(0) == 10
        assert a.entry(1) == 20

    def test_merge_different_groups_rejected(self):
        with pytest.raises(StateError):
            VectorClock([0, 1]).merge(VectorClock([0, 2]))

    def test_snapshot_is_copy(self):
        clock = VectorClock([0])
        snap = clock.snapshot()
        snap[0] = 999
        assert clock.entry(0) == float("-inf")

    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(0, 1e6)), max_size=60))
    def test_property_min_watermark_never_exceeds_any_entry(self, advances):
        clock = VectorClock(range(4))
        for executor_id, watermark in advances:
            clock.advance(executor_id, watermark)
        frontier = clock.min_watermark()
        for executor_id in range(4):
            assert frontier <= clock.entry(executor_id)
