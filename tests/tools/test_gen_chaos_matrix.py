"""The chaos-matrix generator: derived from the registry, not hand-kept."""

import importlib.util
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "gen_chaos_matrix", REPO_ROOT / "tools" / "gen_chaos_matrix.py"
)
gen_chaos_matrix = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_chaos_matrix)


def test_every_cell_is_runnable_shape():
    cells = gen_chaos_matrix.build_matrix()
    assert cells
    for cell in cells:
        assert set(cell) == {"system", "fault", "strategy", "elastic"}
        assert cell["system"]
        assert cell["fault"]


def test_matrix_covers_each_fault_injectable_engine():
    from repro.runtime import CAP_FAULT_INJECTION, REGISTRY

    cells = gen_chaos_matrix.build_matrix()
    systems = {cell["system"] for cell in cells}
    expected = {
        name for name in REGISTRY.names()
        if CAP_FAULT_INJECTION in REGISTRY.create(name, 3).capabilities
    }
    assert systems == expected
    assert {"slash", "uppar", "flink"} <= systems


def test_recovery_presets_cross_strategies():
    cells = gen_chaos_matrix.build_matrix()
    slash_crash = {
        cell["strategy"] for cell in cells
        if cell["system"] == "slash" and cell["fault"] == "leader-crash"
    }
    assert slash_crash == {"epoch-buddy", "async-snapshot"}
    uppar_crash = {
        cell["strategy"] for cell in cells
        if cell["system"] == "uppar" and cell["fault"] == "leader-crash"
    }
    assert uppar_crash == {"async-snapshot"}


def test_data_plane_presets_run_once_per_engine():
    cells = gen_chaos_matrix.build_matrix()
    for system in ("slash", "uppar", "flink"):
        flaps = [c for c in cells
                 if c["system"] == system and c["fault"] == "nic-flap"]
        assert len(flaps) == 1
    (flink_flap,) = [c for c in cells
                     if c["system"] == "flink" and c["fault"] == "nic-flap"]
    assert flink_flap["strategy"] == ""  # no recovery plane: no flag


def test_flink_gets_no_crash_cells():
    cells = gen_chaos_matrix.build_matrix()
    flink_faults = {c["fault"] for c in cells if c["system"] == "flink"}
    assert flink_faults == {
        "nic-flap", "drop-chunk", "credit-starvation", "slow-node", "jitter",
    }


def test_gray_fault_cells_cover_every_engine():
    """slow-node/jitter are pure data-plane kinds: one cell per engine,
    generated from supported_fault_kinds, no recovery strategy fan-out."""
    cells = gen_chaos_matrix.build_matrix()
    for kind in ("slow-node", "jitter"):
        by_system = [c for c in cells if c["fault"] == kind]
        assert {c["system"] for c in by_system} == {"slash", "uppar", "flink"}
        assert len(by_system) == 3  # data-plane: default strategy only
        for cell in by_system:
            assert not cell["elastic"]


def test_data_plane_set_mirrors_injector():
    from repro.faults.injector import DATA_PLANE_KINDS

    assert gen_chaos_matrix.DATA_PLANE == {
        kind.value for kind in DATA_PLANE_KINDS
    }


def test_elastic_engines_get_migration_cells():
    """leader-crash x every supported migration strategy, per engine."""
    from repro.runtime import CAP_ELASTIC, REGISTRY

    cells = gen_chaos_matrix.build_matrix()
    for name in REGISTRY.names():
        engine = REGISTRY.create(name, 3)
        expected = (
            set(engine.supported_migration_strategies)
            if CAP_ELASTIC in engine.capabilities
            else set()
        )
        got = {
            c["elastic"] for c in cells
            if c["system"] == name and c["elastic"]
        }
        assert got == expected
    migration_cells = [c for c in cells if c["elastic"]]
    assert migration_cells
    for cell in migration_cells:
        assert cell["fault"] == gen_chaos_matrix.MIGRATION_PRESET


def test_cli_emits_compact_json(capsys):
    assert gen_chaos_matrix.main([]) == 0
    out = capsys.readouterr().out
    cells = json.loads(out)
    assert cells == gen_chaos_matrix.build_matrix()
