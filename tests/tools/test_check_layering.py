"""The import-layering lint: clean on the real tree, loud on violations."""

import importlib.util
import pathlib
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_layering", REPO_ROOT / "tools" / "check_layering.py"
)
check_layering = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_layering)


@pytest.fixture
def fake_tree(tmp_path):
    """Write files under a synthetic ``repro`` package and lint them."""

    def build(files: dict[str, str]):
        for relative, body in files.items():
            path = tmp_path / "repro" / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(body))
        return check_layering.check(tmp_path / "repro")

    return build


def test_real_tree_is_clean():
    assert check_layering.check(REPO_ROOT / "src" / "repro") == []


def test_upward_import_is_flagged(fake_tree):
    violations = fake_tree(
        {"common/bad.py": "from repro.harness.cli import main\n"}
    )
    assert len(violations) == 1
    assert "'common'" in violations[0] and "'harness'" in violations[0]


def test_plain_import_form_is_flagged(fake_tree):
    violations = fake_tree({"simnet/bad.py": "import repro.runtime.registry\n"})
    assert len(violations) == 1
    assert "'runtime'" in violations[0]


def test_lazy_and_guarded_imports_are_exempt(fake_tree):
    violations = fake_tree({
        "core/ok.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.harness.cli import main  # annotation-only

            def late():
                from repro.sanitizer.harness import run_sanitize  # lazy
                return run_sanitize
        """
    })
    assert violations == []


def test_same_layer_and_downward_imports_pass(fake_tree):
    violations = fake_tree({
        "harness/ok.py": """
            from repro.common.errors import ConfigError
            from repro.harness.parallel import run_cell
            from repro.runtime import REGISTRY
        """
    })
    assert violations == []


def test_cli_entry_point_exits_zero_on_real_tree():
    code = check_layering.main(["check_layering", str(REPO_ROOT / "src" / "repro")])
    assert code == 0
