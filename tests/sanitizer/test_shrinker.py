"""Greedy scenario shrinker: minimization power and floor safety.

The predicates here are synthetic (no engine runs), so these tests pin
the shrinker's search behaviour exactly: it must at least halve the
record count of a record-driven failure, drop an irrelevant fault plan,
respect the dimensional floors, and stay within its attempt budget.
"""

from repro.sanitizer.scenarios import Scenario
from repro.sanitizer.shrinker import (
    MIN_BATCH,
    MIN_KEYSPACE,
    MIN_NODES,
    MIN_RECORDS,
    MIN_THREADS,
    shrink,
)

BIG = Scenario(
    workload="ysb", records=400, batch=128, keyspace=160, nodes=4, threads=3,
    epoch_bytes=8192, credits=4, workload_seed=1,
    fault="leader-crash", fault_seed=2,
)


def test_shrink_halves_a_record_driven_failure():
    """Acceptance bar: a failure needing >= 100 records minimizes to at
    most half the original record count (and stays failing)."""
    still_fails = lambda s: s.records >= 100
    smallest, attempts = shrink(BIG, still_fails)
    assert still_fails(smallest)
    assert smallest.records <= BIG.records // 2
    assert smallest.records == 100  # greedy halving lands exactly here
    assert attempts > 0


def test_shrink_drops_an_irrelevant_fault():
    still_fails = lambda s: s.records >= MIN_RECORDS  # fault plays no role
    smallest, _ = shrink(BIG, still_fails)
    assert smallest.fault is None
    assert smallest.fault_seed == 0


def test_shrink_keeps_a_load_bearing_fault():
    still_fails = lambda s: s.fault == "leader-crash"
    smallest, _ = shrink(BIG, still_fails)
    assert smallest.fault == "leader-crash"
    # Everything else minimized: halving stops once it would cross the
    # floor, so 400 -> 200 -> 100 -> 50 -> 25 (12 < MIN_RECORDS).
    assert smallest.records == 25
    assert smallest.nodes == MIN_NODES
    assert smallest.threads == MIN_THREADS


def test_shrink_respects_all_floors():
    smallest, attempts = shrink(BIG, lambda s: True)
    assert smallest.records >= MIN_RECORDS
    assert smallest.nodes >= MIN_NODES
    assert smallest.threads >= MIN_THREADS
    assert smallest.batch >= MIN_BATCH
    assert smallest.keyspace >= MIN_KEYSPACE
    assert smallest.fault is None
    assert attempts <= 48


def test_shrink_returns_input_when_nothing_smaller_fails():
    seen = []
    def only_original_fails(candidate):
        seen.append(candidate)
        return False
    smallest, attempts = shrink(BIG, only_original_fails)
    assert smallest == BIG
    assert attempts == len(seen)


def test_attempt_budget_bounds_the_walk():
    _smallest, attempts = shrink(BIG, lambda s: True, max_attempts=5)
    assert attempts <= 5


def test_shrunk_scenario_round_trips_through_repro_command():
    smallest, _ = shrink(BIG, lambda s: s.records >= 100)
    payload = smallest.repro_command().split("--replay '")[1].rstrip("'")
    assert Scenario.from_json(payload) == smallest


def test_shrink_drops_an_irrelevant_overload_plane():
    loaded = Scenario(
        workload="ysb", records=200, batch=64, keyspace=40, nodes=3,
        threads=2, epoch_bytes=8192, credits=4, workload_seed=1,
        overload="probabilistic",
    )
    smallest, _ = shrink(loaded, lambda s: s.records >= MIN_RECORDS)
    assert smallest.overload is None


def test_shrink_keeps_a_load_bearing_overload_plane():
    loaded = Scenario(
        workload="ysb", records=200, batch=64, keyspace=40, nodes=3,
        threads=2, epoch_bytes=8192, credits=4, workload_seed=1,
        overload="fair",
    )
    smallest, _ = shrink(loaded, lambda s: s.overload == "fair")
    assert smallest.overload == "fair"
