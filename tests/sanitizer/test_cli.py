"""The ``python -m repro sanitize`` surface: harness driver and CLI.

Fast paths use an injected fake runner; one real end-to-end replay goes
through ``main()`` against a tiny scenario to prove the wiring.
"""

import json

import pytest

from repro.harness.cli import main
from repro.sanitizer.harness import report_failed, run_sanitize
from repro.sanitizer.scenarios import Scenario, ScenarioOutcome

TINY = Scenario(
    workload="ysb", records=80, batch=32, keyspace=16, nodes=2, threads=2,
    epoch_bytes=32768, credits=4, workload_seed=5,
)


def _ok_runner(scenario):
    return ScenarioOutcome(scenario, checks={"event-time": 1}, horizon_s=1.0)


def _fail_above(threshold):
    def runner(scenario):
        outcome = ScenarioOutcome(scenario, horizon_s=1.0)
        if scenario.records >= threshold:
            outcome.failures.append(f"synthetic failure at {scenario.records}")
        return outcome
    return runner


class TestRunSanitize:
    def test_clean_sweep_reports_zero_failures(self):
        lines = []
        report = run_sanitize(
            scenarios=4, seed=3, progress=lines.append, runner=_ok_runner
        )
        assert not report_failed(report)
        assert len(report.rows) == 4
        assert sum("PASS" in line for line in lines) == 4
        assert any("0 failures" in note for note in report.notes)
        # Rows replay the exact generator stream for seed 3.
        from repro.sanitizer.scenarios import generate_scenario

        assert Scenario(**report.rows[2]["scenario"]) == generate_scenario(3, 2)

    def test_failure_is_shrunk_and_gets_a_repro_command(self):
        lines = []
        report = run_sanitize(
            replay=TINY.to_json().replace('"records": 80', '"records": 320'),
            progress=lines.append, runner=_fail_above(100),
        )
        assert report_failed(report)
        (note,) = [n for n in report.notes if n.startswith("repro (minimized):")]
        payload = note.split("--replay '")[1].rstrip("'")
        minimized = Scenario.from_json(payload)
        assert minimized.records <= 320 // 2
        assert any("shrunk 320 ->" in line for line in lines)

    def test_no_shrink_keeps_the_original_repro(self):
        report = run_sanitize(
            replay=TINY.to_json(), shrink_failures=False,
            progress=None, runner=_fail_above(0),
        )
        assert report_failed(report)
        (note,) = [n for n in report.notes if n.startswith("repro:")]
        assert Scenario.from_json(note.split("--replay '")[1].rstrip("'")) == TINY

    def test_replay_rejects_unknown_fields(self):
        with pytest.raises(Exception, match="unknown scenario fields"):
            run_sanitize(replay='{"bogus": 1}', progress=None, runner=_ok_runner)


class TestCli:
    def test_replay_end_to_end_exits_zero(self, capsys, tmp_path):
        """A real tiny scenario through the real runner and CLI."""
        code = main([
            "sanitize", "--replay", TINY.to_json(), "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out and "0 failures" in out
        assert (tmp_path / "sanitize.txt").exists()
        rows = json.loads((tmp_path / "sanitize.json").read_text())
        assert rows[0]["ok"] is True
        assert rows[0]["scenario"]["workload"] == "ysb"

    def test_failing_sweep_exits_nonzero(self, capsys, monkeypatch):
        import repro.sanitizer.harness as harness_mod

        real_run_sanitize = harness_mod.run_sanitize

        def fake_run_sanitize(**kwargs):
            return real_run_sanitize(
                replay=TINY.to_json(), progress=None,
                shrink_failures=False, runner=_fail_above(0),
            )

        monkeypatch.setattr(harness_mod, "run_sanitize", fake_run_sanitize)
        code = main(["sanitize", "--scenarios", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "SANITIZE FAILED" in captured.err
