"""End-to-end tests of the differential oracle harness.

The decisive regression here injects a ledger dedupe bug (``<`` instead
of ``<=`` on the admission frontier, so a delta re-delivered at exactly
the frontier merges twice) and proves the harness catches it through
*both* of its nets: the ``ledger-exactly-once`` checker with sanitizers
on, and the reference-oracle comparison with sanitizers off.
"""

import pytest

from repro.baselines.reference import SequentialReference
from repro.common.errors import StateError
from repro.faults.plan import FaultPlan
from repro.harness.experiments import _compare_aggregates
from repro.harness.runner import build_engine, make_workload
from repro.sanitizer.invariants import InvariantViolation
from repro.sanitizer.scenarios import Scenario, generate_scenario, run_scenario
from repro.state.epoch import EpochLedger

AGG_SCENARIO = Scenario(
    workload="ysb", records=220, batch=64, keyspace=40, nodes=3, threads=2,
    epoch_bytes=8192, credits=4, workload_seed=42,
)
JOIN_SCENARIO = Scenario(
    workload="nb11", records=200, batch=64, keyspace=20, nodes=2, threads=2,
    epoch_bytes=32768, credits=4, workload_seed=7,
)
FAULT_SCENARIO = Scenario(
    workload="ysb", records=220, batch=64, keyspace=40, nodes=3, threads=2,
    epoch_bytes=8192, credits=4, workload_seed=42,
    fault="duplicate-delta", fault_seed=3,
)


def _run_setup(scenario):
    workload = make_workload(scenario.workload, **scenario.workload_overrides())
    query = workload.build_query()
    flows = workload.flows(scenario.nodes, scenario.threads)
    return workload, query, flows


class TestCleanScenarios:
    @pytest.mark.parametrize(
        "scenario", [AGG_SCENARIO, JOIN_SCENARIO, FAULT_SCENARIO],
        ids=["agg", "join", "faulted"],
    )
    def test_scenario_passes_with_all_checkers_armed(self, scenario):
        outcome = run_scenario(scenario)
        assert outcome.ok, outcome.failures
        assert outcome.horizon_s > 0

    def test_every_invariant_category_actually_fired(self):
        outcome = run_scenario(AGG_SCENARIO)
        assert outcome.ok, outcome.failures
        for invariant in (
            "event-time", "credit-conservation", "buffer-lifecycle",
            "clock-monotonic", "watermark-monotonic",
            "ledger-exactly-once", "window-fire",
        ):
            assert outcome.checks.get(invariant, 0) > 0, invariant

    def test_generated_scenarios_are_reproducible(self):
        a = generate_scenario(9, 4)
        b = generate_scenario(9, 4)
        assert a == b
        assert Scenario.from_json(a.to_json()) == a

    def test_sanitized_run_equals_plain_run(self):
        """Arming the checkers must not perturb results (pure observer)."""
        _w, query, flows = _run_setup(AGG_SCENARIO)
        plain = build_engine(
            "slash", AGG_SCENARIO.nodes,
            credits=AGG_SCENARIO.credits, epoch_bytes=AGG_SCENARIO.epoch_bytes,
        ).run(query, flows)
        sanitized = build_engine(
            "slash", AGG_SCENARIO.nodes, sanitize=True,
            credits=AGG_SCENARIO.credits, epoch_bytes=AGG_SCENARIO.epoch_bytes,
        ).run(query, flows)
        assert sanitized.aggregates == plain.aggregates
        assert sanitized.sim_seconds == plain.sim_seconds
        assert sanitized.extra["sanitizer_checks"]


def _buggy_admit(self, delta):
    """admit() with the dedupe comparison off by one: a delta arriving at
    exactly the admission frontier is merged again instead of dropped."""
    key = (delta.operator_id, delta.partition, delta.from_executor)
    last = self._last_seen.get(key)
    if last is not None and delta.epoch < last:  # BUG: should be <=
        return False
    if last is not None and delta.epoch > last + 1:
        raise StateError(f"epoch skip: {delta.epoch} after {last}")
    self._last_seen[key] = delta.epoch
    return True


@pytest.fixture
def ledger_dedupe_bug(monkeypatch):
    monkeypatch.setattr(EpochLedger, "admit", _buggy_admit)


def _fault_setup():
    workload, query, flows = _run_setup(FAULT_SCENARIO)
    oracle = SequentialReference().run(query, flows)
    horizon = build_engine(
        "slash", FAULT_SCENARIO.nodes, epoch_bytes=FAULT_SCENARIO.epoch_bytes,
    ).run(query, flows).sim_seconds
    plan = FaultPlan.preset(
        FAULT_SCENARIO.fault, FAULT_SCENARIO.fault_seed,
        FAULT_SCENARIO.nodes, horizon,
    )
    overrides = dict(
        detect_s=horizon * 0.02, watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )
    return query, flows, oracle, plan, overrides


class TestInjectedLedgerDedupeBug:
    def test_checker_catches_double_admission(self, ledger_dedupe_bug):
        """Sanitizers on: the shadow account vetoes the bogus ruling the
        instant the retransmitted delta is re-admitted."""
        query, flows, _oracle, plan, overrides = _fault_setup()
        with pytest.raises(InvariantViolation) as exc:
            build_engine(
                "slash", FAULT_SCENARIO.nodes, sanitize=True,
                credits=FAULT_SCENARIO.credits,
                epoch_bytes=FAULT_SCENARIO.epoch_bytes,
                fault_plan=plan, fault_overrides=overrides,
            ).run(query, flows)
        assert exc.value.invariant == "ledger-exactly-once"

    def test_differential_oracle_catches_overcount(self, ledger_dedupe_bug):
        """Sanitizers off: the double merge inflates aggregates, and the
        comparison against the sequential reference flags it."""
        query, flows, oracle, plan, overrides = _fault_setup()
        dirty = build_engine(
            "slash", FAULT_SCENARIO.nodes,
            credits=FAULT_SCENARIO.credits,
            epoch_bytes=FAULT_SCENARIO.epoch_bytes,
            fault_plan=plan, fault_overrides=overrides,
        ).run(query, flows)
        missing, extra, mismatched = _compare_aggregates(
            oracle.aggregates, dirty.aggregates
        )
        assert missing or extra or mismatched

    def test_run_scenario_reports_the_bug_as_a_failure(self, ledger_dedupe_bug):
        """The harness entry point turns the violation into a failure
        line instead of crashing, so shrinking can take over."""
        outcome = run_scenario(FAULT_SCENARIO)
        assert not outcome.ok
        assert any("ledger-exactly-once" in line for line in outcome.failures)


class TestOverloadScenarios:
    """~30% of generated scenarios attach an unpaced overload plane; the
    differential comparison must stay exact while the conservation
    invariants fire."""

    def test_unpaced_overload_scenario_passes_and_checks_fire(self):
        scenario = _replace_overload(AGG_SCENARIO, "probabilistic")
        outcome = run_scenario(scenario)
        assert outcome.ok, outcome.failures

    def test_generator_draws_overload_sometimes(self):
        policies = {
            generate_scenario(21, index).overload for index in range(40)
        }
        assert None in policies          # most scenarios stay plain
        assert policies - {None}         # but the overload arm is live
        from repro.core.system import SHED_POLICIES
        assert (policies - {None}) <= set(SHED_POLICIES)

    def test_label_carries_the_overload_tag(self):
        scenario = _replace_overload(AGG_SCENARIO, "fair")
        assert "overload=fair" in scenario.label()
        assert "overload" not in AGG_SCENARIO.label()


def _replace_overload(scenario, policy):
    from dataclasses import replace

    return replace(scenario, overload=policy)
