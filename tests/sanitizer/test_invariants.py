"""Unit tests for each runtime invariant checker in isolation.

Every checker is driven directly through its ``note_`` / ``check_``
hooks against a minimal fake simulator, proving both directions: legal
sequences pass (and are counted), illegal ones raise a structured
:class:`InvariantViolation` naming the right invariant.
"""

import pytest

from repro.sanitizer.invariants import InvariantViolation, Sanitizer
from repro.simnet.trace import Tracer
from repro.state.epoch import EpochDelta


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.tracer = None


class FakeQueue:
    def __init__(self, credits=4, set_slots=()):
        self.credits = credits
        self._set = set(set_slots)

    def poll_slot(self, slot):
        return slot in self._set


def _delta(epoch, partition=0, helper=1):
    return EpochDelta(
        operator_id="op", partition=partition, from_executor=helper,
        epoch=epoch, pairs=(("k", 1.0),), nbytes=32, watermark=0.0,
    )


@pytest.fixture
def san():
    return Sanitizer(FakeSim())


class TestEventTime:
    def test_monotone_events_pass(self, san):
        san.note_event(1.0, 0.0)
        san.note_event(1.0, 1.0)  # zero-delay events at the same instant
        san.note_event(2.5, 1.0)
        assert san.checks["event-time"] == 3

    def test_regressing_event_fails(self, san):
        san.note_event(5.0, 0.0)
        with pytest.raises(InvariantViolation) as exc:
            san.note_event(4.0, 5.0)
        assert exc.value.invariant == "event-time"


class TestCreditConservation:
    def test_balanced_protocol_passes(self, san):
        for _ in range(4):
            san.note_send(1, "ch", credits=4)
        for _ in range(4):
            san.note_credit_return(1, "ch", 1, credits=4)
        san.note_credit_apply(1, "ch", 4, credits=4)
        san.note_send(1, "ch", credits=4)
        assert san.checks["credit-conservation"] == 10

    def test_overspend_fails(self, san):
        for _ in range(2):
            san.note_send(1, "ch", credits=2)
        with pytest.raises(InvariantViolation) as exc:
            san.note_send(1, "ch", credits=2)
        assert exc.value.invariant == "credit-conservation"
        assert "overspend" in str(exc.value)

    def test_phantom_credit_return_fails(self, san):
        san.note_send(1, "ch", credits=4)
        san.note_credit_return(1, "ch", 1, credits=4)
        with pytest.raises(InvariantViolation, match="phantom"):
            san.note_credit_return(1, "ch", 1, credits=4)

    def test_forged_credit_apply_fails(self, san):
        san.note_send(1, "ch", credits=4)
        with pytest.raises(InvariantViolation, match="forged"):
            san.note_credit_apply(1, "ch", 1, credits=4)

    def test_reset_writes_off_in_flight_buffers(self, san):
        """After a reset, the producer may spend a full window again,
        and a credit already on the wire still lands legally."""
        for _ in range(4):
            san.note_send(1, "ch", credits=4)
        san.note_credit_return(1, "ch", 1, credits=4)
        san.note_channel_reset(1, "ch", credits=4)
        for _ in range(4):
            san.note_send(1, "ch", credits=4)
        san.note_credit_return(1, "ch", 1, credits=4)
        san.note_credit_apply(1, "ch", 1, credits=4)

    def test_channels_are_independent(self, san):
        for _ in range(2):
            san.note_send(1, "a", credits=2)
        san.note_send(2, "b", credits=2)  # other channel unaffected


class TestBufferLifecycle:
    def test_clear_slot_passes(self, san):
        san.check_buffer_write("ch", FakeQueue(set_slots=()), slot=3)
        assert san.checks["buffer-lifecycle"] == 1

    def test_reuse_of_unreleased_slot_fails(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_buffer_write("ch", FakeQueue(set_slots={3}), slot=3)
        assert exc.value.invariant == "buffer-lifecycle"


class TestClockAndWatermark:
    def test_monotone_clock_passes(self, san):
        san.note_clock_entry(1, "clk", 0, 1.0)
        san.note_clock_entry(1, "clk", 0, 1.0)
        san.note_clock_entry(1, "clk", 0, 2.0)
        san.note_clock_entry(1, "clk", 1, 0.5)  # other executor independent

    def test_regressing_clock_entry_fails(self, san):
        san.note_clock_entry(1, "clk", 0, 2.0)
        with pytest.raises(InvariantViolation) as exc:
            san.note_clock_entry(1, "clk", 0, 1.0)
        assert exc.value.invariant == "clock-monotonic"

    def test_regressing_watermark_fails(self, san):
        san.note_watermark(1, 0, 10.0)
        san.note_watermark(1, 0, 10.0)
        with pytest.raises(InvariantViolation) as exc:
            san.note_watermark(1, 0, 9.0)
        assert exc.value.invariant == "watermark-monotonic"


class TestLedgerExactlyOnce:
    def test_dense_fresh_sequence_passes(self, san):
        san.note_ledger_admit(1, _delta(0), fresh=True)
        san.note_ledger_admit(1, _delta(1), fresh=True)
        san.note_ledger_admit(1, _delta(1), fresh=False)  # dedupe is legal
        san.note_ledger_admit(1, _delta(2), fresh=True)

    def test_double_admission_fails(self, san):
        san.note_ledger_admit(1, _delta(0), fresh=True)
        san.note_ledger_admit(1, _delta(1), fresh=True)
        with pytest.raises(InvariantViolation, match="admitted twice|frontier"):
            san.note_ledger_admit(1, _delta(1), fresh=True)

    def test_skip_admission_fails(self, san):
        san.note_ledger_admit(1, _delta(0), fresh=True)
        with pytest.raises(InvariantViolation, match="skip"):
            san.note_ledger_admit(1, _delta(2), fresh=True)

    def test_fresh_delta_dropped_as_duplicate_fails(self, san):
        """The lost-update direction: rejecting a sequence-extending
        delta is as wrong as admitting a duplicate."""
        san.note_ledger_admit(1, _delta(0), fresh=True)
        with pytest.raises(InvariantViolation, match="lost update"):
            san.note_ledger_admit(1, _delta(1), fresh=False)

    def test_seed_installs_dedupe_floor(self, san):
        san.note_ledger_seed(1, "op", 0, 1, epoch=3)
        san.note_ledger_admit(1, _delta(3), fresh=False)  # replay dedupes
        san.note_ledger_admit(1, _delta(4), fresh=True)   # frontier resumes

    def test_ledgers_are_independent(self, san):
        san.note_ledger_admit(1, _delta(0), fresh=True)
        san.note_ledger_admit(2, _delta(0), fresh=True)  # other ledger


class TestWindowFire:
    def test_fire_at_or_behind_frontier_passes(self, san):
        san.check_window_fire(0, window_id=3, window_end=10.0, frontier=10.0)
        san.check_window_fire(0, window_id=4, window_end=10.0, frontier=12.0)

    def test_premature_fire_fails(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_window_fire(0, window_id=3, window_end=10.0, frontier=9.0)
        assert exc.value.invariant == "window-fire"
        assert "P1" in str(exc.value)


class TestViolationStructure:
    def test_violation_carries_time_context_and_trace(self):
        sim = FakeSim()
        sim.now = 1.25
        sim.tracer = Tracer(capacity=8)
        sim.tracer.emit(1.0, "chan", "post", slot=3)
        san = Sanitizer(sim)
        with pytest.raises(InvariantViolation) as exc:
            san.fail("event-time", "forced", detail=42)
        violation = exc.value
        assert violation.sim_time == 1.25
        assert violation.context == {"detail": 42}
        assert violation.trace_tail  # timeline tail attached
        rendered = violation.render()
        assert "[event-time]" in rendered and "detail=42" in rendered

    def test_check_counts_snapshot(self, san):
        san.note_event(1.0, 0.0)
        san.note_watermark(1, 0, 1.0)
        assert san.check_counts() == {"event-time": 1, "watermark-monotonic": 1}


class TestSnapshotConsistency:
    """The consistent-cut audit for completed Chandy-Lamport rounds."""

    @staticmethod
    def _round(channel_state, frontier=None, boundary=2):
        return dict(
            round_id=1,
            participants=[0, 1],
            boundaries={1: boundary},
            frontiers={0: frontier if frontier is not None else {}},
            channel_state=channel_state,
        )

    def test_exactly_bridged_cut_passes(self, san):
        # Receiver 0 froze its frontier at epoch 0; epochs 1..2 from
        # sender 1 were in flight and recorded as channel state.
        san.note_snapshot_round(**self._round(
            {(0, 1): [("op", 0, 1), ("op", 0, 2)]},
            frontier={("op", 0, 1): 0},
        ))
        assert san.checks["snapshot-consistency"] == 1

    def test_no_inflight_records_passes(self, san):
        # The frontier already reached the boundary: nothing in flight.
        san.note_snapshot_round(**self._round(
            {}, frontier={("op", 0, 1): 2},
        ))
        assert san.checks["snapshot-consistency"] == 1

    def test_post_marker_record_in_cut_fails(self, san):
        with pytest.raises(InvariantViolation, match="post-marker"):
            san.note_snapshot_round(**self._round(
                {(0, 1): [("op", 0, 1), ("op", 0, 2), ("op", 0, 3)]},
                frontier={("op", 0, 1): 0},
            ))

    def test_frontier_past_boundary_fails(self, san):
        with pytest.raises(InvariantViolation, match="leaked into"):
            san.note_snapshot_round(**self._round(
                {}, frontier={("op", 0, 1): 3},
            ))

    def test_lost_pre_marker_record_fails(self, san):
        with pytest.raises(InvariantViolation, match="lost from the cut"):
            san.note_snapshot_round(**self._round(
                {(0, 1): [("op", 0, 2)]},  # epoch 1 vanished
                frontier={("op", 0, 1): 0},
            ))

    def test_closed_channel_sender_is_skipped(self, san):
        # Sender 1 never shipped a marker (channel closed): no boundary,
        # nothing to audit, the round still counts as checked.
        san.note_snapshot_round(
            round_id=1, participants=[0, 1], boundaries={},
            frontiers={0: {("op", 0, 1): 5}}, channel_state={},
        )
        assert san.checks["snapshot-consistency"] == 1

    def test_aligned_round_with_no_leaks_passes(self, san):
        san.note_aligned_round(round_id=3, captures=4, post_marker_merges=0)
        assert san.checks["snapshot-consistency"] == 1

    def test_aligned_round_with_post_marker_merge_fails(self, san):
        with pytest.raises(InvariantViolation, match="alignment spill"):
            san.note_aligned_round(round_id=3, captures=4,
                                   post_marker_merges=2)


class TestBackpressureConservation:
    def _admit(self, san, offered, admitted, shed, *, batch, policy=True,
               queue=0):
        san.note_overload_admission(
            "exec0.t0", offered=offered, admitted=admitted, shed=shed,
            batch_offered=batch[0], batch_admitted=batch[1],
            batch_shed=batch[2], policy_active=policy, queue_depth=queue,
        )

    def test_balanced_books_pass(self, san):
        self._admit(san, 100, 90, 10, batch=(100, 90, 10))
        self._admit(san, 150, 120, 30, batch=(50, 30, 20))
        assert san.checks["backpressure-conservation"] == 2

    def test_batch_leak_fails(self, san):
        with pytest.raises(InvariantViolation, match="backpressure-conservation"):
            self._admit(san, 100, 90, 5, batch=(100, 90, 5))

    def test_shed_without_a_policy_fails(self, san):
        with pytest.raises(InvariantViolation, match="no shedding"):
            self._admit(san, 100, 90, 10, batch=(100, 90, 10), policy=False)

    def test_negative_queue_depth_fails(self, san):
        with pytest.raises(InvariantViolation, match="went negative"):
            self._admit(san, 100, 100, 0, batch=(100, 100, 0), queue=-1)

    def test_cumulative_regression_fails(self, san):
        self._admit(san, 100, 90, 10, batch=(100, 90, 10))
        with pytest.raises(InvariantViolation, match="backpressure-conservation"):
            self._admit(san, 90, 80, 10, batch=(0, 0, 0))

    def test_shadow_mismatch_fails(self, san):
        self._admit(san, 100, 90, 10, batch=(100, 90, 10))
        # Cumulative counters jump by more than the batch deltas claim.
        with pytest.raises(InvariantViolation, match="backpressure-conservation"):
            self._admit(san, 250, 240, 10, batch=(100, 100, 0))

    def test_sources_are_independent(self, san):
        self._admit(san, 100, 90, 10, batch=(100, 90, 10))
        san.note_overload_admission(
            "exec1.t0", offered=40, admitted=40, shed=0,
            batch_offered=40, batch_admitted=40, batch_shed=0,
            policy_active=False, queue_depth=0,
        )
        assert san.checks["backpressure-conservation"] == 2


class TestNoSilentDrop:
    def test_processed_equals_admitted_passes(self, san):
        san.check_no_silent_drop("exec0", 100, 90, 10, 90)
        assert san.checks["no-silent-drop"] == 1

    def test_unaccounted_offered_records_fail(self, san):
        with pytest.raises(InvariantViolation, match="no-silent-drop"):
            san.check_no_silent_drop("exec0", 100, 85, 10, 85)

    def test_silently_dropped_admitted_records_fail(self, san):
        with pytest.raises(InvariantViolation, match="no-silent-drop"):
            san.check_no_silent_drop("exec0", 100, 90, 10, 89)
