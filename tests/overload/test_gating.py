"""Capability gating and scenario plumbing for the overload plane."""

import pytest

from repro.common.errors import CapabilityError
from repro.core.system import CAP_OVERLOAD, SHED_POLICIES
from repro.overload.config import OverloadConfig
from repro.runtime import REGISTRY, Scenario, run_scenario


class TestAttachHook:
    def test_slash_advertises_every_policy(self):
        engine = REGISTRY.create("slash", 2)
        assert CAP_OVERLOAD in engine.capabilities
        assert engine.supported_shed_policies == frozenset(SHED_POLICIES)
        engine.attach_overload(OverloadConfig(shed_policy="fair"))
        assert engine.overload_config.shed_policy == "fair"

    def test_non_capable_engine_fails_fast(self):
        engine = REGISTRY.create("flink", 2)
        with pytest.raises(CapabilityError, match="overload"):
            engine.attach_overload(OverloadConfig())

    def test_typo_policy_gets_a_suggestion(self):
        engine = REGISTRY.create("slash", 2)
        with pytest.raises(CapabilityError, match="did you mean 'fair'"):
            engine.attach_overload(OverloadConfig(shed_policy="fare"))

    def test_unknown_policy_lists_the_vocabulary(self):
        engine = REGISTRY.create("slash", 2)
        with pytest.raises(CapabilityError, match="drop-oldest"):
            engine.attach_overload(OverloadConfig(shed_policy="lifo"))


class TestScenarioPlumbing:
    def test_overload_scenario_on_non_capable_engine_names_the_capable(self):
        spec = Scenario(
            engine="flink", workload="ysb", nodes=2,
            workload_overrides={"records_per_thread": 100},
            slo_p99_ms=10.0,
        )
        with pytest.raises(CapabilityError, match="slash"):
            run_scenario(spec)

    def test_slo_field_alone_arms_the_plane(self):
        assert Scenario(engine="slash", workload="ysb").is_overload is False
        assert Scenario(
            engine="slash", workload="ysb", slo_p99_ms=5.0
        ).is_overload
        assert Scenario(
            engine="slash", workload="ysb", shed_policy="fair"
        ).is_overload
        assert Scenario(
            engine="slash", workload="ysb",
            overload_overrides={"tenants": 2},
        ).is_overload

    def test_params_round_trip_carries_the_overload_fields(self):
        spec = Scenario(
            engine="slash", workload="ysb", slo_p99_ms=5.0,
            shed_policy="fair", overload_overrides={"tenants": 2},
        )
        params = spec.params()
        rebuilt = Scenario(**params)
        assert rebuilt.slo_p99_ms == 5.0
        assert rebuilt.shed_policy == "fair"
        assert rebuilt.overload_overrides == {"tenants": 2}

    def test_unpaced_overload_run_reports_exact_accounting(self):
        result = run_scenario(Scenario(
            engine="slash", workload="ysb", nodes=2, threads=2, seed=3,
            sanitize=True,
            workload_overrides={
                "records_per_thread": 200, "batch_records": 50,
            },
            overload_overrides={"slo_p99_ms": 1e9},
        ))
        info = result.extra["overload"]
        assert info["paced"] is False
        assert info["offered"] == 2 * 2 * 200
        assert info["shed"] == 0
        assert info["admitted"] == info["offered"]
        checks = result.extra["sanitizer_checks"]
        assert checks["backpressure-conservation"] > 0
        assert checks["no-silent-drop"] == 2  # one per executor
