"""End-to-end overload acceptance: shedding meets the SLO the no-shed
baseline violates, every record is accounted for, and the conservation
invariant holds under combined gray faults."""

import pytest

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.harness.experiments import run_overload
from repro.runtime import Scenario, run_scenario


@pytest.fixture(scope="module")
def overload_report():
    # The CI smoke sizing: small enough for a test, big enough that the
    # flash crowd actually queues.
    return run_overload(records_per_thread=1000, seed=11)


class TestFlashCrowdAcceptance:
    def test_no_shed_violates_and_every_policy_meets_the_slo(
        self, overload_report
    ):
        rows = [r for r in overload_report.rows if r["figure"] == "overload"]
        assert {r["policy"] for r in rows} == {
            "drop-oldest", "probabilistic", "fair",
        }
        for row in rows:
            # The derived SLO sits below the no-shed p99 (the overload
            # is real) and above every shedding run's p99.
            assert row["noshed_p99_ms"] > row["slo_p99_ms"]
            assert row["slo_met"], row
            assert row["delay_p99_ms"] <= row["slo_p99_ms"]

    def test_shed_accounting_is_exact_and_oracle_clean(self, overload_report):
        for row in overload_report.rows:
            if row["figure"] != "overload":
                continue
            assert row["shed"] > 0  # at 2x sustainable, shedding engaged
            assert row["offered"] == row["admitted"] + row["shed"]
            assert sum(row["tenant_offered"]) == row["offered"]
            assert sum(row["tenant_shed"]) == row["shed"]
            assert row["oracle_ok"] is True

    def test_per_tenant_shed_share_tracks_traffic_share(self, overload_report):
        (fair,) = [
            r for r in overload_report.rows
            if r["figure"] == "overload" and r["policy"] == "fair"
        ]
        offered_total = sum(fair["tenant_offered"])
        shed_total = sum(fair["tenant_shed"])
        for offered, shed in zip(fair["tenant_offered"], fair["tenant_shed"]):
            traffic_share = offered / offered_total
            shed_share = shed / shed_total
            assert shed_share == pytest.approx(traffic_share, abs=0.05)

    def test_straggler_mitigation_does_not_regress_p99(self, overload_report):
        gray = {
            r["mitigation"]: r for r in overload_report.rows
            if r["figure"] == "overload-gray"
        }
        assert set(gray) == {False, True}
        assert gray[True]["delay_p99_ms"] <= gray[False]["delay_p99_ms"]
        # The slowed victim (executor 0) was actually detected.
        assert 0 in gray[True]["stragglers"]


class TestConservationUnderCombinedGrayFaults:
    def test_credit_starvation_plus_slow_node_conserves_every_record(self):
        # Satellite (d): the backpressure books must balance even when a
        # starved downstream (credit stalls folded into the delay
        # estimate) and a slowed node (straggler thresholds) are both
        # distorting admission at once.
        plan = FaultPlan([
            FaultEvent(
                FaultKind.CREDIT_STARVATION, at_s=0.5e-4, target=1,
                duration_s=2e-4,
            ),
            FaultEvent(
                FaultKind.SLOW_NODE, at_s=0.5e-4, target=0,
                duration_s=5e-3, factor=0.25,
            ),
        ], seed=3)
        records, nodes, threads = 600, 3, 2
        result = run_scenario(Scenario(
            engine="slash", workload="ysb", nodes=nodes, threads=threads,
            seed=3, sanitize=True, fault_plan=plan,
            workload_overrides={
                "records_per_thread": records, "batch_records": 50,
            },
            slo_p99_ms=0.005,
            shed_policy="probabilistic",
            overload_overrides={
                "ingest_rate_records_per_s": 5e6,
                "flash_at_frac": 0.5,
                "flash_magnitude": 3.0,
            },
        ))
        info = result.extra["overload"]
        assert info["offered"] == nodes * threads * records
        assert info["offered"] == info["admitted"] + info["shed"]
        checks = result.extra["sanitizer_checks"]
        assert checks["backpressure-conservation"] > 0
        assert checks["no-silent-drop"] == nodes
