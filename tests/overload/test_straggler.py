"""StragglerDetector: pure EWMA bookkeeping, flagged against the median."""

import pytest

from repro.overload.straggler import StragglerDetector


def feed(detector, executor_id, per_record_s, batches=6, records=100):
    for _ in range(batches):
        detector.note(executor_id, per_record_s * records, records)


class TestFlagging:
    def test_slow_executor_flagged_against_the_median(self):
        detector = StragglerDetector(ratio=2.0, min_samples=3)
        for executor in (0, 1, 2):
            feed(detector, executor, 1e-6)
        feed(detector, 3, 5e-6)
        assert detector.stragglers() == [3]
        assert detector.is_straggler(3)
        assert not detector.is_straggler(0)
        assert 3 in detector.flagged_at

    def test_no_flag_below_min_samples(self):
        detector = StragglerDetector(ratio=2.0, min_samples=5)
        for executor in (0, 1):
            feed(detector, executor, 1e-6, batches=6)
        feed(detector, 2, 9e-6, batches=4)  # slow, but not mature yet
        assert not detector.is_straggler(2)
        feed(detector, 2, 9e-6, batches=1)
        assert detector.is_straggler(2)

    def test_single_executor_has_no_peers_to_drift_from(self):
        detector = StragglerDetector(ratio=2.0, min_samples=2)
        feed(detector, 0, 1e-3)
        assert detector.cluster_median() is None
        assert not detector.is_straggler(0)
        assert detector.stragglers() == []

    def test_uniform_cluster_flags_nobody(self):
        detector = StragglerDetector(ratio=2.0, min_samples=3)
        for executor in range(4):
            feed(detector, executor, 2e-6)
        assert detector.stragglers() == []


class TestBookkeeping:
    def test_ewma_converges_toward_recent_service_time(self):
        detector = StragglerDetector(alpha=0.5, min_samples=1)
        detector.note(0, 1.0, 100)       # 10 ms/record
        assert detector.ewma(0) == pytest.approx(0.01)
        detector.note(0, 3.0, 100)       # 30 ms/record
        assert detector.ewma(0) == pytest.approx(0.02)  # halfway

    def test_degenerate_samples_are_ignored(self):
        detector = StragglerDetector()
        detector.note(0, 1.0, 0)
        detector.note(0, -1.0, 10)
        assert detector.ewma(0) is None

    def test_flagged_at_records_the_first_flag_only(self):
        detector = StragglerDetector(ratio=2.0, min_samples=2)
        for executor in (0, 1):
            feed(detector, executor, 1e-6, batches=4)
        feed(detector, 2, 8e-6, batches=4)
        first = detector.flagged_at[2]
        feed(detector, 2, 8e-6, batches=2)
        assert detector.flagged_at[2] == first

    def test_report_is_json_shaped(self):
        detector = StragglerDetector(ratio=2.0, min_samples=2)
        for executor in (0, 1):
            feed(detector, executor, 1e-6, batches=4)
        feed(detector, 2, 8e-6, batches=4)
        report = detector.report()
        assert report["stragglers"] == [2]
        assert report["ever_flagged"] == [2]
        assert set(report["ewma_per_record_s"]) == {0, 1, 2}
