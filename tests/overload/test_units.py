"""Pure helpers of the overload coordinator."""

import pytest

from repro.overload.coordinator import weighted_percentile


class TestWeightedPercentile:
    def test_empty_is_zero(self):
        assert weighted_percentile([], 99.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        pairs = [(0.25, 10)]
        for q in (1.0, 50.0, 99.0, 100.0):
            assert weighted_percentile(pairs, q) == 0.25

    def test_weights_shift_the_median(self):
        # 99 records at 1 ms, 1 record at 100 ms: the p50 record is fast.
        pairs = [(0.001, 99), (0.1, 1)]
        assert weighted_percentile(pairs, 50.0) == 0.001
        assert weighted_percentile(pairs, 100.0) == 0.1
        # Flip the weights and the median is the slow value.
        assert weighted_percentile([(0.001, 1), (0.1, 99)], 50.0) == 0.1

    def test_nearest_rank_matches_unweighted_expansion(self):
        pairs = [(float(v), 1) for v in (5, 1, 4, 2, 3)]
        assert weighted_percentile(pairs, 50.0) == 3.0
        assert weighted_percentile(pairs, 99.0) == 5.0
        assert weighted_percentile(pairs, 20.0) == 1.0

    def test_p99_needs_one_percent_tail_mass(self):
        # 1000 admitted records, 5 slow ones: p99 lands below the tail
        # only while the tail is under 1% of the mass.
        fast, slow = (0.001, 995), (0.5, 5)
        assert weighted_percentile([fast, slow], 99.0) == 0.001
        assert weighted_percentile([(0.001, 985), (0.5, 15)], 99.0) == 0.5
        assert weighted_percentile([fast, slow], 99.9) == pytest.approx(0.5)
