"""Tests for the ``overload`` CLI subcommand."""

import json

from repro.harness.cli import main


def test_quick_run_prints_the_acceptance_tables(capsys):
    code = main(["overload", "--quick"])
    assert code == 0
    out = capsys.readouterr().out
    assert "flash crowd" in out
    assert "no-shed" in out and "VIOLATED" in out
    for policy in ("drop-oldest", "probabilistic", "fair"):
        assert policy in out
    assert "MET" in out and "PASS" in out and "FAIL" not in out
    assert "per-tenant fairness" in out
    assert "gray failure: slow-node" in out


def test_out_dir_gets_text_and_json(tmp_path, capsys):
    code = main([
        "overload", "--quick", "--policy", "fair", "--fault", "none",
        "--out", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "overload.txt").exists()
    rows = json.loads((tmp_path / "overload.json").read_text())
    assert rows
    for row in rows:
        assert row["figure"] == "overload"
        assert row["policy"] == "fair"
        assert row["oracle_ok"] is True
        assert row["offered"] == row["admitted"] + row["shed"]


def test_non_capable_engine_fails_with_the_capable_set(capsys):
    code = main(["overload", "--quick", "--system", "flink"])
    assert code == 1
    err = capsys.readouterr().err
    assert "OVERLOAD FAILED" in err
    assert "overload" in err


def test_typo_policy_fails_with_a_suggestion(capsys):
    code = main(["overload", "--quick", "--policy", "fare"])
    assert code == 1
    err = capsys.readouterr().err
    assert "OVERLOAD FAILED" in err
    assert "fair" in err
