"""OverloadConfig: plain data, but only *sensible* plain data."""

import pytest

from repro.common.errors import ConfigError
from repro.overload.config import OverloadConfig


def test_defaults_validate():
    OverloadConfig().validate()


def test_paced_flash_crowd_validates():
    OverloadConfig(
        ingest_rate_records_per_s=1e6,
        flash_at_frac=0.5,
        flash_magnitude=3.0,
        diurnal_amplitude=0.2,
        shed_policy="fair",
    ).validate()


def test_slo_s_converts_milliseconds():
    assert OverloadConfig(slo_p99_ms=50.0).slo_s == pytest.approx(0.05)


@pytest.mark.parametrize(
    ("fields", "match"),
    [
        ({"slo_p99_ms": 0.0}, "slo_p99_ms"),
        ({"slo_p99_ms": -1.0}, "slo_p99_ms"),
        ({"ingest_rate_records_per_s": 0.0}, "ingest_rate"),
        ({"ingest_rate_records_per_s": -5.0}, "ingest_rate"),
        ({"tenants": 0}, "tenants"),
        ({"ingress_queue_records": 0}, "ingress_queue_records"),
        ({"engage_frac": 0.0}, "engage_frac"),
        ({"engage_frac": 0.8, "shed_frac": 0.5}, "engage_frac"),
        ({"shed_frac": 1.5}, "shed_frac"),
        ({"ewma_alpha": 0.0}, "ewma_alpha"),
        ({"ewma_alpha": 1.5}, "ewma_alpha"),
        ({"straggler_ratio": 1.0}, "straggler_ratio"),
        ({"straggler_min_samples": 0}, "straggler_min_samples"),
        ({"straggler_shed_factor": 0.0}, "straggler_shed_factor"),
        ({"straggler_shed_factor": 1.5}, "straggler_shed_factor"),
        # Envelope fields share the distributions-module contract.
        ({"diurnal_amplitude": 1.0}, "diurnal_amplitude"),
        ({"flash_magnitude": 0.5}, "flash_magnitude"),
        ({"flash_at_frac": 1.0}, "flash_at_frac"),
        ({"flash_duration_frac": 0.0}, "flash_duration_frac"),
    ],
)
def test_nonsense_rejected(fields, match):
    with pytest.raises(ConfigError, match=match):
        OverloadConfig(**fields).validate()


def test_unpaced_is_the_sanitize_mode_default():
    # None rate = no schedule, no delay, no shedding — must validate.
    config = OverloadConfig(ingest_rate_records_per_s=None)
    config.validate()
    assert config.shed_policy is None
