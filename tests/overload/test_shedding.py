"""Shedders: explicit keep masks, seeded sampling, per-tenant fairness."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.overload.shedding import (
    DropOldestShedder,
    FairShedder,
    ProbabilisticShedder,
    make_shedder,
)
from repro.workloads.distributions import zipf_keys

TENANTS = 4


def shedder(cls, seed=0):
    return cls(np.random.default_rng(seed), TENANTS)


class TestFactory:
    def test_each_policy_resolves(self):
        for policy, cls in [
            ("drop-oldest", DropOldestShedder),
            ("probabilistic", ProbabilisticShedder),
            ("fair", FairShedder),
        ]:
            built = make_shedder(policy, np.random.default_rng(0), TENANTS)
            assert type(built) is cls
            assert built.name == policy

    def test_unknown_policy_lists_the_known_ones(self):
        with pytest.raises(ConfigError, match="drop-oldest"):
            make_shedder("drop-newest", np.random.default_rng(0), TENANTS)


class TestMaskBoundaries:
    @pytest.mark.parametrize(
        "cls", [DropOldestShedder, ProbabilisticShedder, FairShedder]
    )
    def test_zero_pressure_keeps_everything(self, cls):
        keys = np.arange(100, dtype=np.int64)
        assert shedder(cls).keep_mask(keys, 0.0) is None

    @pytest.mark.parametrize(
        "cls", [DropOldestShedder, ProbabilisticShedder, FairShedder]
    )
    def test_saturation_sheds_everything(self, cls):
        keys = np.arange(100, dtype=np.int64)
        mask = shedder(cls).keep_mask(keys, 1.0)
        assert mask is not None and not mask.any()

    def test_drop_oldest_is_all_or_nothing(self):
        keys = np.arange(100, dtype=np.int64)
        # Below saturation the whole batch survives: batch-granular.
        assert shedder(DropOldestShedder).keep_mask(keys, 0.99) is None

    def test_probabilistic_tracks_pressure_in_expectation(self):
        keys = np.arange(20_000, dtype=np.int64)
        mask = shedder(ProbabilisticShedder).keep_mask(keys, 0.3)
        dropped = 1.0 - mask.mean()
        assert dropped == pytest.approx(0.3, abs=0.02)

    def test_masks_are_seed_reproducible(self):
        keys = np.arange(1000, dtype=np.int64)
        for cls in (ProbabilisticShedder, FairShedder):
            a = shedder(cls, seed=5).keep_mask(keys, 0.4)
            b = shedder(cls, seed=5).keep_mask(keys, 0.4)
            np.testing.assert_array_equal(a, b)


class TestFairness:
    """Satellite (d): per-tenant shed share tracks traffic share."""

    @pytest.mark.parametrize("seed", range(5))
    def test_fair_shed_share_tracks_traffic_share_under_zipf(self, seed):
        # Heavily skewed traffic: one hot tenant dominates the batches.
        keys = zipf_keys(
            8000, key_range=64, z=1.2, rng=np.random.default_rng(seed)
        )
        pressure = 0.4
        fair = shedder(FairShedder, seed=seed)
        mask = fair.keep_mask(keys, pressure)
        tenants = keys % TENANTS
        shed_total = int((~mask).sum())
        assert shed_total > 0
        for tenant in range(TENANTS):
            rows = tenants == tenant
            offered = int(rows.sum())
            if offered == 0:
                continue
            shed = int((~mask[rows]).sum())
            traffic_share = offered / len(keys)
            shed_share = shed / shed_total
            # The fair policy applies the same fraction *within* each
            # tenant (stochastic rounding), so shares match closely even
            # for cold tenants that a batch-global sampler would starve
            # or wipe out.
            assert shed_share == pytest.approx(traffic_share, abs=0.02)
            # And the within-tenant drop fraction is the pressure.
            assert shed / offered == pytest.approx(pressure, abs=0.05)

    def test_fair_never_wipes_out_a_cold_tenant(self):
        # 3 records of tenant 1 inside a batch of tenant-0 traffic: at
        # moderate pressure the cold tenant keeps ~ its own share.
        keys = np.concatenate([
            np.zeros(997, dtype=np.int64),
            np.full(3, 1, dtype=np.int64),
        ])
        mask = shedder(FairShedder).keep_mask(keys, 0.3)
        cold_kept = int(mask[keys == 1].sum())
        assert cold_kept >= 1
