"""Integration: every engine's output equals the sequential reference.

This is property P2 of the paper, checked end-to-end through the full
simulated stack (channels, epochs, CRDT merges, vector clocks, window
triggers) for all four engines and all six workloads.
"""

import math

import pytest

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.common.errors import QueryError
from repro.core.engine import SlashEngine
from repro.workloads import (
    ClusterMonitoringWorkload,
    Nexmark7Workload,
    Nexmark8Workload,
    Nexmark11Workload,
    ReadOnlyWorkload,
    YsbWorkload,
)

SMALL_EPOCH = 48 * 1024

WORKLOADS = {
    "ysb": lambda: YsbWorkload(records_per_thread=1200, key_range=300, batch_records=256),
    "cm": lambda: ClusterMonitoringWorkload(records_per_thread=1200, jobs=150, batch_records=256),
    "nb7": lambda: Nexmark7Workload(records_per_thread=1200, key_range=200, batch_records=256),
    "ro": lambda: ReadOnlyWorkload(records_per_thread=1200, key_range=250, batch_records=256),
    "nb8": lambda: Nexmark8Workload(records_per_thread=500, sellers=30, batch_records=128),
    "nb11": lambda: Nexmark11Workload(records_per_thread=500, sellers=25, batch_records=128),
}


def check_against_reference(engine, workload, nodes, threads):
    flows = workload.flows(nodes, threads)
    expected = SequentialReference().run(workload.build_query(), flows)
    result = engine.run(workload.build_query(), flows)
    assert result.input_records == expected.records
    if expected.aggregates:
        assert set(result.aggregates) == set(expected.aggregates)
        for key, value in expected.aggregates.items():
            assert math.isclose(result.aggregates[key], value, rel_tol=1e-9), key
    else:
        assert result.sorted_join_pairs() == expected.sorted_join_pairs()
    assert result.sim_seconds > 0
    assert result.throughput_records_per_s > 0
    return result


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
class TestSlash:
    def test_multi_node(self, workload_name):
        workload = WORKLOADS[workload_name]()
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH)
        check_against_reference(engine, workload, nodes=3, threads=2)

    def test_single_node(self, workload_name):
        workload = WORKLOADS[workload_name]()
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH)
        check_against_reference(engine, workload, nodes=1, threads=2)


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
def test_uppar_matches_reference(workload_name):
    workload = WORKLOADS[workload_name]()
    check_against_reference(UpParEngine(), workload, nodes=2, threads=4)


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
def test_flink_matches_reference(workload_name):
    workload = WORKLOADS[workload_name]()
    check_against_reference(FlinkEngine(), workload, nodes=2, threads=4)


@pytest.mark.parametrize("workload_name", ["ysb", "cm", "nb7", "ro"])
def test_lightsaber_matches_reference(workload_name):
    workload = WORKLOADS[workload_name]()
    check_against_reference(LightSaberEngine(), workload, nodes=1, threads=4)


def test_lightsaber_rejects_joins():
    workload = Nexmark8Workload(records_per_thread=200, sellers=10)
    with pytest.raises(QueryError, match="join"):
        LightSaberEngine().run(workload.build_query(), workload.flows(1, 2))


class TestScalesAndEpochs:
    """P2 must hold across node counts, thread counts, and epoch sizes."""

    @pytest.mark.parametrize("nodes,threads", [(1, 1), (2, 1), (1, 4), (4, 3), (6, 2)])
    def test_slash_topologies(self, nodes, threads):
        workload = YsbWorkload(records_per_thread=800, key_range=120, batch_records=128)
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH)
        check_against_reference(engine, workload, nodes, threads)

    @pytest.mark.parametrize("epoch_bytes", [8 * 1024, 64 * 1024, 16 * 1024 * 1024])
    def test_slash_epoch_lengths(self, epoch_bytes):
        """Tiny epochs (many syncs) and one giant epoch (single final
        sync) must produce identical answers."""
        workload = YsbWorkload(records_per_thread=800, key_range=120, batch_records=128)
        engine = SlashEngine(epoch_bytes=epoch_bytes)
        check_against_reference(engine, workload, nodes=3, threads=2)

    @pytest.mark.parametrize("credits", [1, 2, 8])
    def test_slash_credit_counts(self, credits):
        workload = ReadOnlyWorkload(records_per_thread=600, key_range=100, batch_records=128)
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH, credits=credits)
        check_against_reference(engine, workload, nodes=2, threads=2)

    def test_skewed_keys_still_correct(self):
        workload = YsbWorkload(
            records_per_thread=1000, key_range=500, zipf_z=1.5, batch_records=128
        )
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH)
        check_against_reference(engine, workload, nodes=3, threads=2)


class TestP1EventTime:
    """Property P1: no result computed from records later than the
    window end — equivalently, every (window, key) aggregate equals the
    aggregate over exactly the records with timestamps inside the
    window, which the reference comparison already enforces.  Here we
    additionally check that window ids only cover the event-time span."""

    def test_window_ids_within_span(self):
        workload = YsbWorkload(records_per_thread=800, key_range=50, batch_records=128)
        engine = SlashEngine(epoch_bytes=SMALL_EPOCH)
        flows = workload.flows(2, 2)
        result = engine.run(workload.build_query(), flows)
        from repro.workloads.ysb import WINDOW_MS

        max_window = workload.span_ms // WINDOW_MS
        for (window_id, _key) in result.aggregates:
            assert 0 <= window_id <= max_window
