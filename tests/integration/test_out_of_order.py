"""Integration tests for bounded out-of-order streams (library extension).

The paper's data model assumes strictly monotone timestamps.  This
extension declares a per-stream disorder bound on the query; engines
subtract it from observed maxima when computing watermarks, preserving
P1 (no early triggering) and P2 (same answer as the sequential
reference) for disorderly sources.
"""

import math

import numpy as np
import pytest

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.common.errors import QueryError
from repro.core.engine import SlashEngine
from repro.core.query import Query
from repro.workloads.ysb import YsbWorkload

DISORDER = 40_000  # 40 s of event-time disorder


def make_workload():
    return YsbWorkload(
        records_per_thread=1500,
        key_range=300,
        batch_records=250,
        disorder_ms=DISORDER,
        seed=13,
    )


def test_workload_actually_disorders_timestamps():
    workload = make_workload()
    flow = workload.flows(1, 1)[(0, 0)]
    all_ts = np.concatenate([batch.timestamps for _s, batch in flow])
    diffs = np.diff(all_ts)
    assert (diffs < 0).any()  # genuinely out of order...
    # ...but within the declared bound: a record trails the running max
    # by at most DISORDER.
    running_max = np.maximum.accumulate(all_ts)
    assert int((running_max - all_ts).max()) <= DISORDER


def test_query_declares_disorder():
    workload = make_workload()
    query = workload.build_query()
    assert query.streams[0].disorder_ms == DISORDER


def test_negative_disorder_rejected():
    from repro.workloads.ysb import YSB_SCHEMA

    with pytest.raises(QueryError):
        Query("q").stream("s", YSB_SCHEMA, disorder_ms=-1)


@pytest.mark.parametrize(
    "engine_factory,nodes,threads",
    [
        (lambda: SlashEngine(epoch_bytes=48 * 1024), 3, 2),
        (lambda: UpParEngine(), 2, 4),
        (lambda: FlinkEngine(), 2, 4),
        (lambda: LightSaberEngine(), 1, 4),
    ],
    ids=["slash", "uppar", "flink", "lightsaber"],
)
def test_p2_holds_under_disorder(engine_factory, nodes, threads):
    workload = make_workload()
    flows = workload.flows(nodes, threads)
    expected = SequentialReference().run(workload.build_query(), flows)
    result = engine_factory().run(workload.build_query(), flows)
    assert set(result.aggregates) == set(expected.aggregates)
    for key, value in expected.aggregates.items():
        assert math.isclose(result.aggregates[key], value, rel_tol=1e-9), key


def test_without_declared_bound_disordered_input_can_lose_records():
    """The negative control: feeding disorderly data to a query that
    declares disorder_ms=0 violates the watermark contract, so some
    window fires early and the distributed answer diverges.  (This
    documents WHY the bound must be declared.)"""
    workload = make_workload()
    flows = workload.flows(3, 2)
    # Same data, but a query that (wrongly) claims monotone streams.
    honest = workload.build_query()
    lying = YsbWorkload(
        records_per_thread=1500, key_range=300, batch_records=250, seed=13
    ).build_query()
    expected = SequentialReference().run(honest, flows)
    # Use tiny epochs so watermarks propagate aggressively mid-run.
    result = SlashEngine(epoch_bytes=8 * 1024).run(lying, flows)
    diverged = any(
        result.aggregates.get(key) != value for key, value in expected.aggregates.items()
    )
    assert diverged
