"""Determinism: every engine run is a pure function of its inputs.

Reruns of identical configurations must be bit-identical in simulated
time, query output, and accounted counters — this is what makes every
number in EXPERIMENTS.md reproducible.
"""

import pytest

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.transfer import SlashTransferBench, UpParTransferBench
from repro.baselines.uppar import UpParEngine
from repro.core.engine import SlashEngine
from repro.workloads.readonly import ReadOnlyWorkload
from repro.workloads.ysb import YsbWorkload


def fingerprint(result):
    return (
        result.sim_seconds,
        result.input_records,
        result.emitted,
        result.counters.total_cycles,
        result.counters.instructions,
        tuple(sorted(result.aggregates.items())),
    )


@pytest.mark.parametrize(
    "engine_factory,nodes,threads",
    [
        (lambda: SlashEngine(epoch_bytes=48 * 1024), 3, 2),
        (lambda: UpParEngine(), 2, 4),
        (lambda: FlinkEngine(), 2, 2),
        (lambda: LightSaberEngine(), 1, 3),
    ],
    ids=["slash", "uppar", "flink", "lightsaber"],
)
def test_engine_runs_are_bit_identical(engine_factory, nodes, threads):
    def once():
        workload = YsbWorkload(records_per_thread=900, key_range=120, batch_records=150)
        return fingerprint(
            engine_factory().run(workload.build_query(), workload.flows(nodes, threads))
        )

    assert once() == once()


def test_transfer_benches_are_bit_identical():
    def once(bench_cls):
        workload = ReadOnlyWorkload(records_per_thread=5000, key_range=500, batch_records=1000)
        result = bench_cls(threads=2).run(workload)
        return (
            result.sim_seconds,
            result.payload_bytes,
            result.mean_latency_s,
            result.sender_counters.total_cycles,
        )

    for bench_cls in (SlashTransferBench, UpParTransferBench):
        assert once(bench_cls) == once(bench_cls)


def test_different_seeds_change_data_not_contract():
    a = YsbWorkload(records_per_thread=500, key_range=60, batch_records=100, seed=1)
    b = YsbWorkload(records_per_thread=500, key_range=60, batch_records=100, seed=2)
    engine = SlashEngine(epoch_bytes=32 * 1024)
    result_a = engine.run(a.build_query(), a.flows(2, 2))
    result_b = engine.run(b.build_query(), b.flows(2, 2))
    assert result_a.aggregates != result_b.aggregates  # data differs
    assert result_a.input_records == result_b.input_records  # shape same
