"""Integration: non-identity partition leadership (extension).

The paper's setup phase assigns one primary partition per executor.
The directory also supports mapping several partitions onto a subset of
executors — the decoupled storage/compute layout of challenge C1, where
pure compute nodes act as helpers for everything.  P2 must still hold,
and the watermark-deferral rule (only the last sibling delta per leader
carries the watermark) is what makes it safe.
"""

import math

import pytest

from repro.baselines.reference import SequentialReference
from repro.common.errors import StateError
from repro.core.engine import SlashEngine
from repro.state.partition import PartitionDirectory
from repro.workloads.ysb import YsbWorkload
from repro.workloads.nexmark import Nexmark8Workload


def check(leaders, workload, nodes, threads):
    flows = workload.flows(nodes, threads)
    expected = SequentialReference().run(workload.build_query(), flows)
    engine = SlashEngine(epoch_bytes=24 * 1024, leaders=leaders)
    result = engine.run(workload.build_query(), flows)
    if expected.aggregates:
        assert set(result.aggregates) == set(expected.aggregates)
        for key, value in expected.aggregates.items():
            assert math.isclose(result.aggregates[key], value, rel_tol=1e-9), key
    else:
        assert result.sorted_join_pairs() == expected.sorted_join_pairs()
    return result


def make_ysb():
    return YsbWorkload(records_per_thread=900, key_range=200, batch_records=150)


def test_two_state_nodes_out_of_four():
    check([i % 2 for i in range(4)], make_ysb(), nodes=4, threads=2)


def test_single_dedicated_state_node():
    """leaders=[0,0,0]: node 0 stores everything, nodes 1-2 pure compute."""
    result = check([0, 0, 0], make_ysb(), nodes=3, threads=2)
    # Every emitted result came from the single state node.
    assert result.emitted > 0


def test_custom_leadership_join():
    workload = Nexmark8Workload(records_per_thread=400, sellers=25, batch_records=100)
    check([0, 0, 1, 1], workload, nodes=4, threads=1)


def test_directory_validation():
    with pytest.raises(StateError, match="map all"):
        PartitionDirectory(4, leaders=[0, 1])
    with pytest.raises(StateError, match="out of range"):
        PartitionDirectory(2, leaders=[0, 5])


def test_directory_partitions_led_by():
    directory = PartitionDirectory(4, leaders=[1, 1, 3, 3])
    assert directory.partitions_led_by(1) == [0, 1]
    assert directory.partitions_led_by(0) == []
    assert directory.leader_of_partition(2) == 3
