"""Smoke checks on the example scripts.

Full example runs are exercised manually / in CI-nightly (some sweep
tens of seconds of simulation); here we guarantee each script parses,
imports against the current API, and exposes a ``main`` entry point.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "nexmark_auctions",
        "drilldown_channels",
        "skew_robustness",
        "sliding_windows",
        "state_backend_tour",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    function_names = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names
    # Every example must carry a module docstring with a Run: line.
    docstring = ast.get_docstring(tree)
    assert docstring and "Run:" in docstring


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    """Importing must resolve every symbol against the current API
    (without executing main, which the __main__ guard prevents)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
