"""Integration: sliding windows (general stream slicing) on every engine.

Sliding windows are the library's exercise of the paper's slicing-based
window model (Sec. 5.2).  Records update non-overlapping slices; window
results merge consecutive slices at trigger time.  All engines share the
slice state layout, so P2 must hold everywhere.
"""

import math

import numpy as np
import pytest

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.common.rng import RngTree
from repro.core.engine import SlashEngine
from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import SlidingWindow
from repro.workloads.distributions import monotone_timestamps, uniform_keys

SCHEMA = Schema(
    "measurements", (("ts", "i8"), ("key", "i8"), ("value", "f8")), record_bytes=24
)
WINDOW = SlidingWindow(size_ms=40_000, slide_ms=10_000)


def build_query():
    query = Query("sliding-sum")
    (
        query.stream("measurements", SCHEMA)
        .aggregate(WINDOW, agg="sum", value_field="value")
    )
    return query


def make_flows(nodes, threads, records=1200, keys=25, span=200_000):
    tree = RngTree(99).child("sliding-int")
    flows = {}
    for node in range(nodes):
        for thread in range(threads):
            rng = tree.generator(node, thread)
            ts = monotone_timestamps(records, span, rng)
            key = uniform_keys(records, keys, rng)
            value = rng.uniform(-5, 5, size=records).round(4)
            batch = SCHEMA.batch_from_columns(ts=ts, key=key, value=value)
            flows[(node, thread)] = [
                ("measurements", batch.take(np.arange(s, min(s + 200, records))))
                for s in range(0, records, 200)
            ]
    return flows


def check(engine, nodes, threads):
    flows = make_flows(nodes, threads)
    expected = SequentialReference().run(build_query(), flows)
    result = engine.run(build_query(), flows)
    assert set(result.aggregates) == set(expected.aggregates)
    for group, value in expected.aggregates.items():
        assert math.isclose(result.aggregates[group], value, rel_tol=1e-9, abs_tol=1e-9), group
    return result


def test_reference_overlap_consistency():
    """Adjacent windows share 3 of 4 slices; spot-check the overlap by
    recomputing one window's sum from raw records."""
    flows = make_flows(1, 2)
    expected = SequentialReference().run(build_query(), flows)
    window_id = sorted({w for w, _k in expected.aggregates})[3]
    lo = window_id * WINDOW.slide_ms
    hi = lo + WINDOW.size_ms
    manual: dict = {}
    for flow in flows.values():
        for _stream, batch in flow:
            mask = (batch.timestamps >= lo) & (batch.timestamps < hi)
            for key, value in zip(batch.keys[mask], batch.col("value")[mask]):
                manual[int(key)] = manual.get(int(key), 0.0) + float(value)
    for key, value in manual.items():
        assert math.isclose(expected.aggregates[(window_id, key)], value, rel_tol=1e-9)


def test_slash_sliding_matches_reference():
    check(SlashEngine(epoch_bytes=32 * 1024), nodes=3, threads=2)


def test_slash_single_node_sliding():
    check(SlashEngine(epoch_bytes=32 * 1024), nodes=1, threads=3)


def test_uppar_sliding_matches_reference():
    check(UpParEngine(), nodes=2, threads=4)


def test_flink_sliding_matches_reference():
    check(FlinkEngine(), nodes=2, threads=4)


def test_lightsaber_sliding_matches_reference():
    check(LightSaberEngine(), nodes=1, threads=4)


def test_windows_overlap_counts():
    """Every record contributes to exactly size/slide = 4 windows."""
    flows = make_flows(1, 1, records=400)
    expected = SequentialReference().run(build_query(), flows)
    total_contributions = 0
    for flow in flows.values():
        for _stream, batch in flow:
            total_contributions += 4 * len(batch)
    # Sum of per-window counts equals 4x the record count; verify via a
    # parallel count query.
    count_query = Query("sliding-count")
    count_query.stream("measurements", SCHEMA).aggregate(WINDOW, agg="count")
    counts = SequentialReference().run(count_query, flows)
    assert sum(counts.aggregates.values()) == total_contributions
