#!/usr/bin/env python3
"""Quickstart: define a streaming query and run it on a simulated rack.

This example builds the paper's YSB query (filter -> project -> 10-minute
tumbling per-key count), generates a small deterministic workload, runs
it on a 4-node simulated RDMA cluster with the Slash engine, and checks
the distributed answer against the sequential reference (property P2).

Run:  python examples/quickstart.py
"""

from repro.baselines.reference import SequentialReference
from repro.common.units import fmt_rate_records, fmt_time
from repro.core.engine import SlashEngine
from repro.core.query import Query
from repro.core.windows import TumblingWindow
from repro.workloads.ysb import EVENT_VIEW, YSB_SCHEMA, YsbWorkload


def build_query() -> Query:
    """The YSB query, written against the public query-builder API."""
    query = Query("ysb-quickstart")
    (
        query.stream("events", YSB_SCHEMA)
        .filter(lambda batch: batch.col("event_type") == EVENT_VIEW, selectivity=1 / 3)
        .project("ts", "key")
        .aggregate(TumblingWindow(10 * 60 * 1000), agg="count")
    )
    return query


def main() -> None:
    # 1. A deterministic workload: each of the 4 nodes x 4 threads gets
    #    its own physical flow of 5000 records (weak scaling).
    workload = YsbWorkload(records_per_thread=5000, key_range=50_000, seed=7)
    flows = workload.flows(nodes=4, threads_per_node=4)

    # 2. Run it on the simulated rack with the native-RDMA Slash engine.
    engine = SlashEngine(epoch_bytes=128 * 1024)
    result = engine.run(build_query(), flows)

    print(f"system               : {result.system}")
    print(f"nodes x threads      : {result.nodes} x {result.threads_per_node}")
    print(f"input records        : {result.input_records}")
    print(f"simulated time       : {fmt_time(result.sim_seconds)}")
    print(f"simulated throughput : {fmt_rate_records(result.throughput_records_per_s)}")
    print(f"windows x keys emitted: {result.emitted}")
    print(f"SSB channels created : {result.extra['connections']}")

    # 3. Verify against the sequential reference (paper property P2).
    expected = SequentialReference().run(build_query(), flows)
    assert set(result.aggregates) == set(expected.aggregates)
    assert all(result.aggregates[k] == v for k, v in expected.aggregates.items())
    print("P2 check             : distributed output == sequential reference")

    # Peek at a few results: {(window_id, campaign_key): view_count}.
    sample = sorted(result.aggregates.items())[:5]
    for (window_id, key), count in sample:
        print(f"  window {window_id}, campaign {key}: {count} views")


if __name__ == "__main__":
    main()
