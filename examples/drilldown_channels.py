#!/usr/bin/env python3
"""Drill-down: RDMA channel behaviour under your own parameter sweeps.

Reproduces the spirit of the paper's Sec. 8.3 micro-benchmarks at
example scale: two nodes, one 100 Gb/s NIC, producers streaming the
Read-Only workload to stateful consumers.  Sweeps the channel buffer
size and credit count, prints throughput / latency / credit stalls, and
shows the top-down breakdown that explains *why* each side behaves the
way it does.

Run:  python examples/drilldown_channels.py
"""

from repro.baselines.transfer import SlashTransferBench, UpParTransferBench
from repro.common.units import fmt_bytes, fmt_rate, fmt_time
from repro.metrics.breakdown import breakdown_percentages, dominant_category
from repro.workloads.readonly import ReadOnlyWorkload

LINK = 11.8e9  # the ib_write_bw ceiling the paper draws as a red line


def workload():
    return ReadOnlyWorkload(records_per_thread=60_000, key_range=100_000, batch_records=4000)


def sweep_buffer_sizes() -> None:
    print("--- buffer-size sweep (2 threads, Slash channels) ---")
    print(f"{'buffer':>8} {'throughput':>12} {'of link':>8} {'latency':>10} {'stalls':>8}")
    for buffer_bytes in (4096, 16384, 65536, 262144, 1048576):
        result = SlashTransferBench(threads=2, buffer_bytes=buffer_bytes).run(workload())
        print(
            f"{fmt_bytes(buffer_bytes):>8} "
            f"{fmt_rate(result.throughput_bytes_per_s):>12} "
            f"{result.throughput_bytes_per_s / LINK * 100:>7.1f}% "
            f"{fmt_time(result.mean_latency_s):>10} "
            f"{result.credit_stall_s * 1e6:>7.0f}us"
        )


def sweep_credits() -> None:
    print("\n--- credit-count sweep (2 threads, 64 KiB buffers) ---")
    print(f"{'credits':>8} {'throughput':>12} {'of link':>8}")
    for credits in (1, 2, 4, 8, 16, 64):
        result = SlashTransferBench(threads=2, credits=credits).run(workload())
        print(
            f"{credits:>8} "
            f"{fmt_rate(result.throughput_bytes_per_s):>12} "
            f"{result.throughput_bytes_per_s / LINK * 100:>7.1f}%"
        )


def compare_shapes() -> None:
    print("\n--- Slash (1:1 channels) vs UpPar (hash fan-out), 4 threads ---")
    for bench in (SlashTransferBench(threads=4), UpParTransferBench(threads=4)):
        result = bench.run(workload())
        print(f"{result.system}: {fmt_rate(result.throughput_bytes_per_s)}")
        for role, counters in (
            ("sender", result.sender_counters),
            ("receiver", result.receiver_counters),
        ):
            shares = breakdown_percentages(counters)
            verdict = dominant_category(counters)
            pretty = "  ".join(f"{k}={v:.0f}%" for k, v in shares.items())
            print(f"   {role:<9}{pretty}  -> {verdict}-bound")


def main() -> None:
    sweep_buffer_sizes()
    sweep_credits()
    compare_shapes()


if __name__ == "__main__":
    main()
