#!/usr/bin/env python3
"""Skew robustness: why omitting re-partitioning is skew-agnostic.

Runs the YSB query end-to-end on two nodes while sweeping the Zipf
exponent of the key distribution, for Slash and for the re-partitioning
RDMA UpPar baseline — the paper's Fig. 8d in miniature.  Watch two
opposite slopes emerge from the same input data:

* UpPar hash-partitions records to the consumer owning each key; under
  skew one consumer owns the hot keys, its queues back up, and credit
  back-pressure stalls every partitioner in the cluster;
* Slash updates whatever executor saw the record and lazily merges, so
  skew only *shrinks* the state it has to keep hot and ship.

Run:  python examples/skew_robustness.py
"""

from repro.baselines.uppar import UpParEngine
from repro.common.units import fmt_rate_records
from repro.core.engine import SlashEngine
from repro.workloads.ysb import YsbWorkload

NODES = 2
THREADS = 10
ZS = (0.0, 0.4, 0.8, 1.2, 1.6, 2.0)


def run(engine, z: float) -> float:
    workload = YsbWorkload(
        records_per_thread=5000,
        key_range=1_000_000,
        zipf_z=z,
        batch_records=800,
        seed=3,
    )
    flows = workload.flows(NODES, THREADS)
    result = engine.run(workload.build_query(), flows)
    return result.throughput_records_per_s


def bar(value: float, scale: float, width: int = 40) -> str:
    return "#" * max(1, int(value / scale * width))


def main() -> None:
    slash = SlashEngine(epoch_bytes=128 * 1024)
    uppar = UpParEngine()
    results = {z: (run(slash, z), run(uppar, z)) for z in ZS}
    top = max(max(pair) for pair in results.values())

    print(f"YSB on {NODES} nodes x {THREADS} threads, Zipf z sweep\n")
    for z, (slash_thr, uppar_thr) in results.items():
        print(f"z={z:0.1f}  slash {fmt_rate_records(slash_thr):>14}  {bar(slash_thr, top)}")
        print(f"       uppar {fmt_rate_records(uppar_thr):>14}  {bar(uppar_thr, top)}")
        print()

    base_slash, base_uppar = results[ZS[0]]
    last_slash, last_uppar = results[ZS[-1]]
    print(f"slash: z=0 -> z=2 changes throughput by {last_slash / base_slash - 1:+.1%}")
    print(f"uppar: z=0 -> z=2 changes throughput by {last_uppar / base_uppar - 1:+.1%}")


if __name__ == "__main__":
    main()
