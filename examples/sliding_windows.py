#!/usr/bin/env python3
"""Sliding windows through general stream slicing — an extension demo.

The paper's evaluation uses tumbling and session windows, but its window
model explicitly supports slicing (Sec. 5.2, citing Traub et al.).  This
example exercises that path: a per-key sliding-window SUM (size 60 s,
slide 15 s) over a synthetic sensor stream, executed distributed by
Slash and verified against the sequential reference.  Each record lands
in exactly one *slice*; each window's answer is the CRDT merge of four
consecutive slices, so overlapping windows cost O(1) state per record.

Run:  python examples/sliding_windows.py
"""

import numpy as np

from repro.baselines.reference import SequentialReference
from repro.common.rng import RngTree
from repro.common.units import fmt_rate_records
from repro.core.engine import SlashEngine
from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import SlidingWindow
from repro.workloads.distributions import monotone_timestamps, uniform_keys

SENSOR_SCHEMA = Schema(
    name="sensor_readings",
    fields=(("ts", "i8"), ("key", "i8"), ("value", "f8")),
    record_bytes=24,
)

WINDOW = SlidingWindow(size_ms=60_000, slide_ms=15_000)
SPAN_MS = 5 * 60 * 1000  # five minutes of event time
NODES, THREADS = 3, 2
RECORDS_PER_FLOW = 3000
SENSORS = 40


def build_query() -> Query:
    query = Query("sensor-sliding-sum")
    (
        query.stream("readings", SENSOR_SCHEMA)
        .aggregate(WINDOW, agg="sum", value_field="value")
    )
    return query


def make_flows():
    rng_tree = RngTree(2024).child("sliding-example")
    flows = {}
    for node in range(NODES):
        for thread in range(THREADS):
            rng = rng_tree.generator("flow", node, thread)
            ts = monotone_timestamps(RECORDS_PER_FLOW, SPAN_MS, rng)
            keys = uniform_keys(RECORDS_PER_FLOW, SENSORS, rng)
            values = rng.normal(20.0, 5.0, size=RECORDS_PER_FLOW).round(3)
            batch = SENSOR_SCHEMA.batch_from_columns(ts=ts, key=keys, value=values)
            # One big batch per flow, re-cut into channel-sized pieces.
            pieces = [
                ("readings", batch.take(np.arange(start, min(start + 500, len(batch)))))
                for start in range(0, len(batch), 500)
            ]
            flows[(node, thread)] = pieces
    return flows


def main() -> None:
    query = build_query()
    flows = make_flows()
    expected = SequentialReference().run(query, flows)
    result = SlashEngine(epoch_bytes=64 * 1024).run(build_query(), flows)

    assert set(result.aggregates) == set(expected.aggregates)
    mismatches = [
        key
        for key in expected.aggregates
        if abs(result.aggregates[key] - expected.aggregates[key]) > 1e-6
    ]
    assert not mismatches, mismatches[:3]

    windows = sorted({win for win, _key in result.aggregates})
    print(f"distributed sliding-window sum over {NODES}x{THREADS} workers")
    print(f"records: {result.input_records}, sensors: {SENSORS}")
    print(f"windows fired: {len(windows)} (slide 15 s, size 60 s)")
    print(f"throughput: {fmt_rate_records(result.throughput_records_per_s)}")
    print("P2 check: distributed == sequential for every (window, sensor)\n")

    sensor = min(key for _win, key in result.aggregates)
    print(f"sensor {sensor}, consecutive overlapping windows:")
    for win in windows[2:8]:
        value = result.aggregates.get((win, sensor))
        if value is not None:
            start_s = win * WINDOW.slide_ms / 1000
            print(f"  [{start_s:7.1f}s .. {start_s + 60:7.1f}s)  sum = {value:10.2f}")


if __name__ == "__main__":
    main()
