#!/usr/bin/env python3
"""A guided tour of the Slash State Backend API (paper Sec. 7).

Demonstrates, without an engine in the way, the exact mechanics the
executor uses: eager fragment updates, the hybrid log's delta region,
epoch shipping with CRDT merging at the leader, vector-clock gated
triggering, epoch-aligned snapshots, and custom partition leadership.

Run:  python examples/state_backend_tour.py
"""

from repro.state.crdt import SumCrdt
from repro.state.partition import PartitionDirectory
from repro.state.ssb import SlashStateBackend


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def main() -> None:
    # A 3-executor deployment; executor i leads partition i.
    directory = PartitionDirectory(3)
    backends = [SlashStateBackend(e, directory) for e in range(3)]
    handles = [b.handle("tour.agg", SumCrdt()) for b in backends]

    banner("1. eager partial state (no re-partitioning)")
    # All three executors update the SAME logical key concurrently —
    # each into its local fragment/primary, no coordination.
    key = ("window-0", 42)
    for backend, handle, amount in zip(backends, handles, (10, 20, 12)):
        handle.update(key, amount)
        backend.observe_watermark(1000.0)
    owner = directory.leader_of_key(42)
    print(f"key {key} is owned by partition/leader {owner}")
    for e, handle in enumerate(handles):
        print(f"  executor {e} local payload: {handle.get_local(key)}")

    banner("2. epoch boundary: helpers ship hybrid-log deltas")
    for e, handle in enumerate(handles):
        for delta in handle.collect_deltas():
            print(
                f"  executor {e} ships partition {delta.partition} "
                f"epoch {delta.epoch}: {len(delta.pairs)} pairs, "
                f"{delta.nbytes} B, watermark {delta.watermark}"
            )
            handles[directory.leader_of_partition(delta.partition)].merge_delta(delta)

    banner("3. the leader's merged view (CRDT sum of all partials)")
    merged = dict(handles[owner].led_items())
    print(f"  leader {owner} sees {key} = {merged[key]} (10 + 20 + 12)")

    banner("4. vector clock gates triggering (property P1)")
    clock = backends[owner].clock
    print(f"  clock at leader: {clock}")
    print(f"  can fire a window ending at t=1000? {clock.all_past(1000.0)}")
    print(f"  ...ending at t=1001? {clock.all_past(1001.0)}")

    banner("5. event-time trigger: extract and finish the window")
    results = handles[owner].extract_window("window-0")
    print(f"  emitted: {results}")

    banner("6. epoch-aligned snapshot / restore")
    owned_key = next(k for k in range(100) if directory.leader_of_key(k) == owner)
    handles[owner].update(("window-1", owned_key), 99)
    snapshot = backends[owner].snapshot()
    fresh = SlashStateBackend(owner, directory)
    fresh.handle("tour.agg", SumCrdt())
    fresh.restore(snapshot)
    print(
        "  restored executor sees:",
        dict(fresh.handle("tour.agg", SumCrdt()).led_items()),
    )

    banner("7. custom leadership: one dedicated state node")
    disagg = PartitionDirectory(3, leaders=[0, 0, 0])
    print(f"  partitions led by executor 0: {disagg.partitions_led_by(0)}")
    print(f"  partitions led by executor 1: {disagg.partitions_led_by(1)}")
    print("  (executors 1-2 become pure compute helpers; see")
    print("   tests/integration/test_custom_leadership.py for the full run)")


if __name__ == "__main__":
    main()
