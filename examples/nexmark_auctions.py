#!/usr/bin/env python3
"""NexMark auction analytics: a windowed join across two streams.

This example runs NB8 — the 12-hour tumbling-window equi-join of the
auction and seller streams (4 auctions per seller event, every auction
referencing a valid seller) — on all four engines and compares their
simulated throughput, demonstrating the paper's Fig. 6d story at
example scale: the re-partitioning engines pay for moving every record
across the exchange, while Slash builds join state in place and lazily
concatenates the per-key partials.

Run:  python examples/nexmark_auctions.py
"""

from repro.baselines.flink import FlinkEngine
from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.common.units import fmt_rate_records, fmt_time
from repro.core.engine import SlashEngine
from repro.workloads.nexmark import Nexmark8Workload

NODES = 2
THREADS = 4


def main() -> None:
    workload = Nexmark8Workload(
        records_per_thread=1500, sellers=500, batch_records=250, seed=42
    )
    query = workload.build_query()
    flows = workload.flows(NODES, THREADS)

    expected = SequentialReference().run(query, flows)
    print(
        f"NB8 on {NODES} nodes x {THREADS} threads: "
        f"{expected.records} input records, "
        f"{len(expected.join_pairs)} expected join pairs\n"
    )

    engines = [
        SlashEngine(epoch_bytes=96 * 1024),
        UpParEngine(),
        FlinkEngine(),
    ]
    baseline = None
    for engine in engines:
        result = engine.run(workload.build_query(), flows)
        correct = result.sorted_join_pairs() == expected.sorted_join_pairs()
        throughput = result.throughput_records_per_s
        if baseline is None:
            baseline = throughput
        print(
            f"{result.system:<6} throughput {fmt_rate_records(throughput):>14}  "
            f"sim time {fmt_time(result.sim_seconds):>10}  "
            f"pairs {len(result.join_pairs):>6}  "
            f"correct={correct}  "
            f"({throughput / baseline:.2f}x of slash)"
        )
        assert correct, f"{result.system} produced wrong join output!"

    # A couple of joined rows: (window, seller_key, auction_row, seller_row).
    print("\nSample joined pairs:")
    for window_id, key, auction, seller in expected.join_pairs[:3]:
        print(f"  window {window_id}, seller {key}: auction={auction} seller={seller}")


if __name__ == "__main__":
    main()
