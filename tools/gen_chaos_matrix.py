#!/usr/bin/env python
"""Generate the CI chaos matrix from the engine registry.

The matrix is *derived*, not hand-written: every engine advertising
``CAP_FAULT_INJECTION`` is crossed with every fault preset whose kinds
it can absorb (``supported_fault_kinds``) and, for presets that need a
recovery plane, with every strategy it can drive
(``supported_recovery_strategies``).  Adding a preset, an engine, or a
strategy therefore grows the CI matrix automatically — a hand-listed
matrix silently stops covering what the registry can do.

Cell shape (one JSON object per matrix include entry)::

    {"system": "uppar", "fault": "leader-crash", "strategy": "async-snapshot",
     "elastic": ""}

``strategy`` is ``""`` when the cell needs no recovery plane (the CI
job omits ``--strategy``).  Data-plane presets run once under the
engine's default strategy instead of once per strategy: the recovery
plane is idle, so extra strategies would re-run the same simulation.

Engines advertising ``CAP_ELASTIC`` additionally get **migration
cells**: the ``leader-crash`` preset crossed with every migration
strategy they support (``elastic`` holds the strategy name, passed to
``--elastic``).  These are the migration × leader-crash differential
cells — a mover crash mid-rescale must fence-rollback or complete,
never leave partial ownership, and the run must still match the
fail-free baseline.

Usage::

    PYTHONPATH=src python tools/gen_chaos_matrix.py          # compact JSON
    PYTHONPATH=src python tools/gen_chaos_matrix.py --pretty # human listing
"""

from __future__ import annotations

import argparse
import json
import sys

#: Kinds absorbed entirely inside the data plane (mirrors
#: repro.faults.injector.DATA_PLANE_KINDS by value).
DATA_PLANE = frozenset(
    {"nic-flap", "drop-chunk", "credit-starvation", "slow-node", "jitter"}
)

#: Plan-builder parameters used only to *discover* each preset's kinds;
#: the CI cells run with the CLI defaults, not these.
PROBE_SEED = 7
PROBE_EXECUTORS = 3
PROBE_HORIZON_S = 1.0


def preset_kinds() -> dict[str, frozenset]:
    """Map each named preset to the fault kinds its plan schedules."""
    from repro.faults.plan import FaultPlan, PRESETS

    kinds = {}
    for preset in PRESETS:
        plan = FaultPlan.preset(preset, PROBE_SEED, PROBE_EXECUTORS, PROBE_HORIZON_S)
        kinds[preset] = frozenset(event.kind.value for event in plan)
    return kinds


#: The preset crossed with migration strategies for CAP_ELASTIC engines:
#: a leader crash is the fault a live handoff must survive (fenced
#: rollback or completion, never partial ownership).
MIGRATION_PRESET = "leader-crash"


def build_matrix() -> list[dict]:
    from repro.runtime import (
        CAP_ELASTIC,
        CAP_FAULT_INJECTION,
        MIGRATION_STRATEGIES,
        RECOVERY_STRATEGIES,
        REGISTRY,
    )

    kinds_by_preset = preset_kinds()
    cells: list[dict] = []
    for system in REGISTRY.names():
        engine = REGISTRY.create(system, PROBE_EXECUTORS)
        if CAP_FAULT_INJECTION not in engine.capabilities:
            continue
        strategies = [
            s for s in RECOVERY_STRATEGIES
            if s in engine.supported_recovery_strategies
        ]
        for preset, kinds in kinds_by_preset.items():
            if not kinds <= engine.supported_fault_kinds:
                continue
            if kinds <= DATA_PLANE:
                cells.append({
                    "system": system,
                    "fault": preset,
                    "strategy": engine.default_recovery_strategy or "",
                    "elastic": "",
                })
            else:
                for strategy in strategies:
                    cells.append({
                        "system": system,
                        "fault": preset,
                        "strategy": strategy,
                        "elastic": "",
                    })
            if preset == MIGRATION_PRESET and CAP_ELASTIC in engine.capabilities:
                for migration in MIGRATION_STRATEGIES:
                    if migration not in engine.supported_migration_strategies:
                        continue
                    cells.append({
                        "system": system,
                        "fault": preset,
                        "strategy": engine.default_recovery_strategy or "",
                        "elastic": migration,
                    })
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pretty", action="store_true",
                        help="one human-readable line per cell")
    args = parser.parse_args(argv)
    cells = build_matrix()
    if args.pretty:
        for cell in cells:
            strategy = cell["strategy"] or "-"
            elastic = f" +{cell['elastic']} rescale" if cell["elastic"] else ""
            print(f"{cell['system']:<12} {cell['fault']:<20} {strategy}{elastic}")
        print(f"[{len(cells)} cells]", file=sys.stderr)
    else:
        print(json.dumps(cells, separators=(",", ":")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
