#!/usr/bin/env python3
"""Enforce the repo's import layering: no upward imports between layers.

The refactored layering (see docs/architecture.md) is a strict DAG::

    common -> simnet -> rdma/channel/state -> membership/metrics
           -> core -> elastic/faults/overload/workloads -> baselines
           -> runtime -> grid/sanitizer -> harness

A module may import from its own layer or any layer below it; importing
from a layer above is an error (it is how the pre-refactor tangles crept
in, e.g. the sanitizer reaching into the harness for ``Report``).

Only **module-level** imports are checked: a lazy import inside a
function is the sanctioned escape hatch for genuinely late bindings
(pool workers, optional attachments), and ``if TYPE_CHECKING:`` blocks
are skipped because they never execute.

Exit status: 0 when clean, 1 with one ``file:line`` diagnostic per
violation otherwise.  Run as ``python tools/check_layering.py`` from the
repo root (or pass the package root as argv[1]).
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: repro.<subpackage> -> layer rank.  Equal ranks may import each other.
LAYERS: dict[str, int] = {
    "common": 0,
    "simnet": 1,
    "rdma": 2,
    "channel": 2,
    "state": 2,
    "membership": 3,
    "metrics": 3,
    "core": 4,
    "elastic": 5,
    "faults": 5,
    "overload": 5,
    "workloads": 5,
    "baselines": 6,
    "runtime": 7,
    "grid": 8,
    "sanitizer": 8,
    "harness": 9,
}

#: Files whose whole point is to stitch layers together for end users.
EXEMPT = {"repro/__init__.py", "repro/__main__.py"}


def _layer_of(module: str) -> str | None:
    """The repro subpackage a dotted module path belongs to, if any."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in LAYERS:
        return parts[1]
    return None


def _module_level_imports(tree: ast.Module):
    """Yield (node, dotted-module) for every import that runs at import
    time: direct module-body statements plus ``try:`` fallbacks, but not
    ``if`` blocks (TYPE_CHECKING guards) or function/class bodies."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node, node.module


def check(package_root: pathlib.Path) -> list[str]:
    violations = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root.parent).as_posix()
        if relative in EXEMPT or "__pycache__" in relative:
            continue
        importer = _layer_of(relative.removesuffix(".py").replace("/", "."))
        if importer is None:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node, module in _module_level_imports(tree):
            imported = _layer_of(module)
            if imported is None:
                continue
            if LAYERS[imported] > LAYERS[importer]:
                violations.append(
                    f"{relative}:{node.lineno}: layer "
                    f"'{importer}' (rank {LAYERS[importer]}) imports upward "
                    f"from '{imported}' (rank {LAYERS[imported]}): {module}"
                )
    return violations


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path("src/repro")
    if not root.is_dir():
        print(f"package root {root} not found", file=sys.stderr)
        return 2
    violations = check(root)
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("import layering OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
